//! Regenerates **Fig. 1** (motivation): a supervised ML-IDS trained with
//! labels on the attack classes of the first experience only, evaluated
//! on known attacks (experience 0 test set) vs unknown/zero-day attacks
//! (all later experiences).
//!
//! Paper shape: F1 is high on known attacks and collapses on unknown
//! attacks across all four datasets.

use cnd_bench::{banner, row, standard_split, BENCH_SEED};
use cnd_core::supervised::{MlpClassifier, MlpClassifierConfig};
use cnd_datasets::DatasetProfile;
use cnd_metrics::classification::f1_score;

fn main() {
    banner(
        "Fig. 1 — supervised IDS on known vs unknown attacks",
        "paper Fig. 1",
    );
    let widths = [12, 12, 12, 8];
    println!(
        "{}",
        row(
            &[
                "dataset".into(),
                "known F1".into(),
                "unknown F1".into(),
                "drop".into(),
            ],
            &widths
        )
    );
    for profile in DatasetProfile::ALL {
        let (_, split) = standard_split(profile);
        let e0 = &split.experiences[0];
        let labels: Vec<u8> = e0.train_class.iter().map(|&c| u8::from(c != 0)).collect();
        let mut clf = MlpClassifier::new(MlpClassifierConfig {
            seed: BENCH_SEED,
            ..Default::default()
        });
        clf.fit(&e0.train_x, &labels).expect("training succeeds");

        let known = f1_score(
            &clf.predict(&e0.test_x).expect("prediction succeeds"),
            &e0.test_y,
        )
        .expect("both classes present");

        let mut unknown_sum = 0.0;
        let mut n = 0;
        for e in &split.experiences[1..] {
            let pred = clf.predict(&e.test_x).expect("prediction succeeds");
            unknown_sum += f1_score(&pred, &e.test_y).expect("both classes present");
            n += 1;
        }
        let unknown = unknown_sum / n as f64;
        println!(
            "{}",
            row(
                &[
                    profile.name().into(),
                    format!("{known:.3}"),
                    format!("{unknown:.3}"),
                    format!("{:.0}%", 100.0 * (1.0 - unknown / known.max(1e-9))),
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: supervised F1 collapses on unseen attack types.");
}
