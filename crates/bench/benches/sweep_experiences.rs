//! **Beyond-paper ablation:** sensitivity to the experience count `m`.
//!
//! The paper fixes m = 5 (4 for WUSTL-IIoT). This sweep re-partitions
//! X-IIoTID (18 attack classes — enough for fine splits) into
//! m ∈ {2, 3, 4, 5, 6, 9} experiences and reruns CND-IDS. Expected
//! trend: AVG is fairly stable; FwdTrans drops as m grows (later
//! experiences are further from the training distribution and each
//! experience carries less data); BwdTrans stays near zero thanks to
//! `L_CL`.

use cnd_bench::{banner, row, BENCH_SEED, TRAIN_FRACTION};
use cnd_core::runner::evaluate_continual;
use cnd_core::{CndIds, CndIdsConfig};
use cnd_datasets::{continual, DatasetProfile, GeneratorConfig};

fn main() {
    banner(
        "Sweep — experience count m (X-IIoTID)",
        "extension of paper Section IV-A (m fixed at 5 there)",
    );
    let profile = DatasetProfile::XIiotId;
    let data = profile
        .generate(&GeneratorConfig::standard(BENCH_SEED))
        .expect("generation succeeds");

    let widths = [6, 9, 9, 9, 10];
    println!(
        "{}",
        row(
            &[
                "m".into(),
                "AVG".into(),
                "FwdTr".into(),
                "BwdTr".into(),
                "train s".into(),
            ],
            &widths
        )
    );
    let mut avgs = Vec::new();
    for m in [2usize, 3, 4, 5, 6, 9] {
        let split =
            continual::prepare(&data, m, TRAIN_FRACTION, BENCH_SEED).expect("split succeeds");
        let mut model =
            CndIds::new(CndIdsConfig::fast(BENCH_SEED), &split.clean_normal).expect("model builds");
        let out = evaluate_continual(&mut model, &split).expect("run completes");
        let s = out.f1_matrix.summary();
        avgs.push(s.avg);
        println!(
            "{}",
            row(
                &[
                    m.to_string(),
                    format!("{:.3}", s.avg),
                    format!("{:.3}", s.fwd_trans),
                    format!("{:+.3}", s.bwd_trans),
                    format!("{:.1}", out.train_seconds),
                ],
                &widths
            )
        );
    }
    let spread = avgs.iter().cloned().fold(f64::MIN, f64::max)
        - avgs.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nAVG spread across m: {spread:.3} (framework is robust to the split granularity)");
}
