//! Hand-timed micro-benchmarks of the parallel compute substrate.
//!
//! Not a paper artifact — this target measures the hot kernels behind
//! CFE/PCA scoring (blocked matmul, batch FRE scoring, batched network
//! inference) serially and on the `cnd-parallel` pool, asserts the two
//! paths are bit-identical in deterministic mode, and writes the numbers
//! to `BENCH_substrate.json` for CI trend tracking.
//!
//! Env knobs:
//! * `CND_SUBSTRATE_QUICK=1` — small shapes for CI smoke runs.
//! * `CND_THREADS=N` — compute threads for the parallel measurements.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cnd_linalg::Matrix;
use cnd_ml::pca::{ComponentSelection, Pca};
use cnd_nn::{Activation, Sequential};
use cnd_parallel::ThreadPool;
use rand::SeedableRng;

/// Counting wrapper around the system allocator so the out-of-core
/// bench can report a peak-allocation proxy: `LIVE` tracks currently
/// allocated bytes, `PEAK` the high-water mark since the last
/// [`reset_peak_to_live`]. Relaxed ordering is fine — the benches that
/// read these run their measured sections single-threaded, and the
/// counter only feeds a coarse MiB-level report.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the high-water mark to the current live byte count and
/// returns that baseline; `PEAK - baseline` after a measured section is
/// the section's peak extra allocation.
fn reset_peak_to_live() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// One serial-vs-parallel measurement.
struct Measurement {
    name: String,
    serial_secs: f64,
    parallel_secs: f64,
    /// Work-rate label and serial/parallel values (GFLOP/s or flows/s).
    rate_unit: &'static str,
    serial_rate: f64,
    parallel_rate: f64,
    bit_identical: bool,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }
}

/// Best-of-`reps` wall time of `f` (one warmup call first).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut sink = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        sink = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    // Keep the last result alive so the closure is not optimized away.
    std::hint::black_box(&sink);
    best
}

fn bench_matmul_shape(
    m: usize,
    k: usize,
    p: usize,
    reps: usize,
    serial: &ThreadPool,
    parallel: &ThreadPool,
) -> Measurement {
    let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
    let b = Matrix::from_fn(k, p, |i, j| ((i * 13 + j * 7) % 89) as f64 / 89.0);
    let s_out = serial.install(|| a.matmul(&b).expect("shapes agree"));
    let p_out = parallel.install(|| a.matmul(&b).expect("shapes agree"));
    let serial_secs = time_best(reps, || {
        serial.install(|| a.matmul(&b).expect("shapes agree"))
    });
    let parallel_secs = time_best(reps, || {
        parallel.install(|| a.matmul(&b).expect("shapes agree"))
    });
    let flops = 2.0 * m as f64 * k as f64 * p as f64;
    Measurement {
        name: format!("matmul_{m}x{k}x{p}"),
        serial_secs,
        parallel_secs,
        rate_unit: "GFLOP/s",
        serial_rate: flops / serial_secs / 1e9,
        parallel_rate: flops / parallel_secs / 1e9,
        bit_identical: s_out == p_out,
    }
}

fn bench_matmul(n: usize, reps: usize, serial: &ThreadPool, parallel: &ThreadPool) -> Measurement {
    bench_matmul_shape(n, n, n, reps, serial, parallel)
}

/// f64-vs-f32 end-to-end serve scoring on a frozen model. The schema is
/// reused with a twist: `serial_*` measures the f64 scorer, `parallel_*`
/// measures the quantized f32 twin (both on the serial pool — the
/// comparison is precision, not thread fan-out), and `bit_identical`
/// records whether every f32 score honoured the documented
/// [`cnd_core::deploy::F32_SCORE_TOLERANCE`] relative bound.
fn bench_serve_score_f32(
    rows: usize,
    cols: usize,
    reps: usize,
    serial: &ThreadPool,
) -> Measurement {
    use cnd_core::deploy::F32_SCORE_TOLERANCE;
    use cnd_core::{CndIds, CndIdsConfig};

    let normal = |i: usize, j: usize| ((i * 7 + j * 3) % 13) as f64 * 0.1;
    let n_c = Matrix::from_fn(50, cols, normal);
    let train = Matrix::from_fn(300, cols, |i, j| {
        if i < 240 {
            normal(i + 100, j)
        } else {
            normal(i + 100, j) + 2.5
        }
    });
    let mut model = CndIds::new(CndIdsConfig::fast(cnd_bench::BENCH_SEED), &n_c).expect("builds");
    model.train_experience(&train).expect("trains");
    let scorer = model.freeze().expect("freezes");
    let twin = scorer.to_f32();
    let x = Matrix::from_fn(rows, cols, |i, j| {
        normal(i + 500, j) + ((i % 10) as f64) * 0.2
    });

    let s64 = serial.install(|| scorer.anomaly_scores(&x).expect("f64 scores"));
    let s32 = serial.install(|| twin.anomaly_scores(&x).expect("f32 scores"));
    let within_tolerance = s64
        .iter()
        .zip(&s32)
        .all(|(a, b)| (a - b).abs() <= F32_SCORE_TOLERANCE * (1.0 + a.abs()));

    let f64_secs = time_best(reps, || {
        serial.install(|| scorer.anomaly_scores(&x).expect("f64 scores"))
    });
    let f32_secs = time_best(reps, || {
        serial.install(|| twin.anomaly_scores(&x).expect("f32 scores"))
    });
    Measurement {
        name: format!("serve_score_f32_{rows}x{cols}"),
        serial_secs: f64_secs,
        parallel_secs: f32_secs,
        rate_unit: "flows/s",
        serial_rate: rows as f64 / f64_secs,
        parallel_rate: rows as f64 / f32_secs,
        bit_identical: within_tolerance,
    }
}

/// Out-of-core scoring through a `.cnds` flow store. Two rows come out:
///
/// * `store_stream_<shape>` — `serial_*` scores the fully materialized
///   matrix, `parallel_*` streams chunk-at-a-time from the store (both
///   on the serial pool — the comparison is data plane, not thread
///   fan-out); `bit_identical` records that the streamed f64 scores are
///   bitwise equal to the in-memory ones.
/// * `store_peak_alloc_<shape>` — the same two passes measured once
///   through the counting allocator; `serial_rate`/`parallel_rate` are
///   peak extra MiB allocated by the in-memory vs streamed pass, and
///   `bit_identical` asserts the streamed pass never out-allocated the
///   in-memory one (the memory-boundedness claim of the data plane).
fn bench_store_stream(
    rows: usize,
    cols: usize,
    reps: usize,
    serial: &ThreadPool,
) -> [Measurement; 2] {
    use cnd_core::{CndIds, CndIdsConfig};
    use cnd_store::{DType, FlowStore, StoreWriter};

    const CHUNK_ROWS: usize = 256;
    const MIB: f64 = 1024.0 * 1024.0;

    let normal = |i: usize, j: usize| ((i * 7 + j * 3) % 13) as f64 * 0.1;
    let n_c = Matrix::from_fn(50, cols, normal);
    let train = Matrix::from_fn(300, cols, |i, j| {
        if i < 240 {
            normal(i + 100, j)
        } else {
            normal(i + 100, j) + 2.5
        }
    });
    let mut model = CndIds::new(CndIdsConfig::fast(cnd_bench::BENCH_SEED), &n_c).expect("builds");
    model.train_experience(&train).expect("trains");
    let scorer = model.freeze().expect("freezes");
    let x = Matrix::from_fn(rows, cols, |i, j| {
        normal(i + 500, j) + ((i % 10) as f64) * 0.2
    });

    let path =
        std::env::temp_dir().join(format!("cnd_substrate_{}_{rows}.cnds", std::process::id()));
    let mut writer =
        StoreWriter::create(&path, cols, DType::F64, false).expect("store is writable");
    writer.push_matrix(&x, &[]).expect("rows append");
    writer.finalize().expect("store finalizes");

    let stream_pass = || {
        let store = FlowStore::open(&path).expect("store opens");
        let chunks = store.chunks(CHUNK_ROWS).expect("chunk iter opens");
        let mut scores = Vec::with_capacity(rows);
        for part in scorer.score_chunks(chunks) {
            scores.extend(part.expect("chunk scores").scores);
        }
        scores
    };

    // Peak-allocation proxy, measured once per path (not in the timing
    // loop, so the warmup cannot inflate the high-water mark).
    let base = reset_peak_to_live();
    let mem_secs_once = Instant::now();
    let s_mem = serial.install(|| scorer.anomaly_scores(&x).expect("scores"));
    let mem_once = mem_secs_once.elapsed().as_secs_f64();
    let mem_peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);

    let base = reset_peak_to_live();
    let stream_secs_once = Instant::now();
    let s_stream = serial.install(stream_pass);
    let stream_once = stream_secs_once.elapsed().as_secs_f64();
    let stream_peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);

    let bitwise = s_mem.len() == s_stream.len()
        && s_mem
            .iter()
            .zip(&s_stream)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    let mem_secs = time_best(reps, || {
        serial.install(|| scorer.anomaly_scores(&x).expect("scores"))
    });
    let stream_secs = time_best(reps, || serial.install(stream_pass));
    let _ = std::fs::remove_file(&path);

    [
        Measurement {
            name: format!("store_stream_{rows}x{cols}"),
            serial_secs: mem_secs,
            parallel_secs: stream_secs,
            rate_unit: "flows/s",
            serial_rate: rows as f64 / mem_secs,
            parallel_rate: rows as f64 / stream_secs,
            bit_identical: bitwise,
        },
        Measurement {
            name: format!("store_peak_alloc_{rows}x{cols}"),
            serial_secs: mem_once,
            parallel_secs: stream_once,
            rate_unit: "MiB peak",
            serial_rate: mem_peak as f64 / MIB,
            parallel_rate: stream_peak as f64 / MIB,
            bit_identical: stream_peak <= mem_peak,
        },
    ]
}

fn bench_pca_score(
    rows: usize,
    cols: usize,
    reps: usize,
    serial: &ThreadPool,
    parallel: &ThreadPool,
) -> Measurement {
    let x = Matrix::from_fn(rows, cols, |i, j| ((i * 29 + j * 3) % 31) as f64 / 31.0);
    let pca = Pca::fit(&x, ComponentSelection::Fixed(cols / 2)).expect("fits");
    let s_out = serial.install(|| pca.reconstruction_errors(&x).expect("scores"));
    let p_out = parallel.install(|| pca.reconstruction_errors(&x).expect("scores"));
    let serial_secs = time_best(reps, || {
        serial.install(|| pca.reconstruction_errors(&x).expect("scores"))
    });
    let parallel_secs = time_best(reps, || {
        parallel.install(|| pca.reconstruction_errors(&x).expect("scores"))
    });
    let bit_identical = s_out.len() == p_out.len()
        && s_out
            .iter()
            .zip(&p_out)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    Measurement {
        name: format!("pca_score_{rows}x{cols}"),
        serial_secs,
        parallel_secs,
        rate_unit: "flows/s",
        serial_rate: rows as f64 / serial_secs,
        parallel_rate: rows as f64 / parallel_secs,
        bit_identical,
    }
}

fn bench_cfe_forward(
    rows: usize,
    cols: usize,
    reps: usize,
    serial: &ThreadPool,
    parallel: &ThreadPool,
) -> Measurement {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cnd_bench::BENCH_SEED);
    // Paper-shaped CFE encoder stack: features -> 256 -> 64 -> latent.
    let net = Sequential::mlp(&[cols, 256, 64, 32], Activation::Relu, &mut rng);
    let x = Matrix::from_fn(rows, cols, |i, j| ((i * 11 + j * 5) % 41) as f64 / 41.0);
    let s_out = serial.install(|| net.forward_inference(&x));
    let p_out = parallel.install(|| net.forward_inference(&x));
    let serial_secs = time_best(reps, || serial.install(|| net.forward_inference(&x)));
    let parallel_secs = time_best(reps, || parallel.install(|| net.forward_inference(&x)));
    Measurement {
        name: format!("cfe_forward_{rows}x{cols}"),
        serial_secs,
        parallel_secs,
        rate_unit: "flows/s",
        serial_rate: rows as f64 / serial_secs,
        parallel_rate: rows as f64 / parallel_secs,
        bit_identical: s_out == p_out,
    }
}

fn json_escape_free(s: &str) -> &str {
    // Names are generated from fixed templates; just assert the
    // invariant instead of escaping.
    assert!(!s.contains(['"', '\\']), "bench name needs no escaping");
    s
}

fn write_json(
    path: &str,
    quick: bool,
    threads: usize,
    results: &[Measurement],
    phases: &cnd_obs::PhaseReport,
) {
    let mut entries = Vec::with_capacity(results.len());
    for m in results {
        entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"serial_secs\": {:.6}, ",
                "\"parallel_secs\": {:.6}, \"speedup\": {:.3}, ",
                "\"rate_unit\": \"{}\", \"serial_rate\": {:.3}, ",
                "\"parallel_rate\": {:.3}, \"bit_identical\": {}}}"
            ),
            json_escape_free(&m.name),
            m.serial_secs,
            m.parallel_secs,
            m.speedup(),
            m.rate_unit,
            m.serial_rate,
            m.parallel_rate,
            m.bit_identical,
        ));
    }
    let phase_entries: Vec<String> = phases
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"span\": \"{}\", \"count\": {}, \"total_us\": {}, \"self_us\": {}}}",
                json_escape_free(&r.name),
                r.count,
                r.total,
                r.self_time,
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"substrate_perf\",\n  \"quick\": {quick},\n  \
         \"parallel_threads\": {threads},\n  \"results\": [\n{}\n  ],\n  \
         \"phases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        phase_entries.join(",\n"),
    );
    std::fs::write(path, body).expect("BENCH_substrate.json is writable");
}

fn main() {
    let quick = std::env::var("CND_SUBSTRATE_QUICK").is_ok_and(|v| v == "1");
    let serial = ThreadPool::new(1);
    let parallel = cnd_parallel::global();
    cnd_bench::banner(
        "substrate_perf — parallel compute substrate",
        "not a paper artifact (kernel performance tracking)",
    );
    println!(
        "mode: {}, parallel pool: {} thread(s), deterministic: {}",
        if quick { "quick" } else { "full" },
        parallel.threads(),
        parallel.is_deterministic(),
    );

    // Trace each kernel measurement so the report can carry a
    // per-phase timing breakdown next to the rates.
    cnd_obs::reset(cnd_obs::ClockKind::Wall);
    cnd_obs::set_enabled(true);

    let reps = if quick { 2 } else { 3 };
    let (score_rows, score_cols) = if quick { (2_000, 32) } else { (20_000, 64) };
    let mut results = vec![
        {
            let _s = cnd_obs::span!("bench.matmul");
            bench_matmul(192, reps, &serial, parallel)
        },
        {
            let _s = cnd_obs::span!("bench.matmul_512");
            bench_matmul(512, reps, &serial, parallel)
        },
        {
            // The CFE encode shape: a tall-skinny batch against the
            // first (widest) layer of the paper's encoder stack.
            let _s = cnd_obs::span!("bench.matmul_encode");
            bench_matmul_shape(score_rows, score_cols, 256, reps, &serial, parallel)
        },
        {
            let _s = cnd_obs::span!("bench.pca_score");
            bench_pca_score(score_rows, score_cols, reps, &serial, parallel)
        },
        {
            let _s = cnd_obs::span!("bench.cfe_forward");
            bench_cfe_forward(score_rows, score_cols, reps, &serial, parallel)
        },
        {
            let _s = cnd_obs::span!("bench.serve_score_f32");
            bench_serve_score_f32(score_rows, score_cols, reps, &serial)
        },
    ];
    {
        let _s = cnd_obs::span!("bench.store_stream");
        results.extend(bench_store_stream(score_rows, score_cols, reps, &serial));
    }
    cnd_obs::set_enabled(false);
    let phases = cnd_obs::phase_report(&cnd_obs::snapshot_jsonl()).expect("bench trace parses");

    let widths = [22, 12, 12, 9, 14, 14, 9];
    println!(
        "{}",
        cnd_bench::row(
            &[
                "kernel".into(),
                "serial s".into(),
                "parallel s".into(),
                "speedup".into(),
                "serial rate".into(),
                "parallel rate".into(),
                "bit-eq".into(),
            ],
            &widths,
        )
    );
    for m in &results {
        assert!(
            m.bit_identical,
            "{}: deterministic parallel output diverged from serial",
            m.name
        );
        println!(
            "{}",
            cnd_bench::row(
                &[
                    m.name.clone(),
                    format!("{:.4}", m.serial_secs),
                    format!("{:.4}", m.parallel_secs),
                    format!("{:.2}x", m.speedup()),
                    format!("{:.1} {}", m.serial_rate, m.rate_unit),
                    format!("{:.1} {}", m.parallel_rate, m.rate_unit),
                    m.bit_identical.to_string(),
                ],
                &widths,
            )
        );
    }

    // Benches run with the package dir as cwd; anchor the report at the
    // workspace root so CI can find it at a fixed path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_substrate.json");
    write_json(path, quick, parallel.threads(), &results, &phases);
    println!("\nwrote {path}");
    println!(
        "gate against the committed baseline with: cnd-ids-cli bench-check BENCH_substrate.json"
    );
}
