//! Criterion micro-benchmarks of the numeric substrate (matmul, Jacobi
//! eigendecomposition, K-Means, PCA fit, CFE training step). Not a paper
//! artifact — these track the performance of the building blocks so
//! regressions in the hand-rolled kernels are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cnd_linalg::{eigen, stats, Matrix};
use cnd_ml::pca::{ComponentSelection, Pca};
use cnd_ml::KMeans;
use rand::SeedableRng;

fn substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    // Matmul 128x64 * 64x128.
    let a = Matrix::from_fn(128, 64, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
    let b = Matrix::from_fn(64, 128, |i, j| ((i * 13 + j * 7) % 89) as f64 / 89.0);
    group.bench_function("matmul_128x64x128", |bch| {
        bch.iter(|| a.matmul(&b).expect("shapes agree"))
    });

    // Jacobi eigen on a 48x48 covariance.
    let x = Matrix::from_fn(400, 48, |i, j| ((i * 7 + j * 3) % 23) as f64 / 23.0);
    let cov = stats::covariance(&x).expect("non-empty");
    group.bench_function("jacobi_eigen_48", |bch| {
        bch.iter(|| eigen::symmetric_eigen(&cov, 1e-7).expect("symmetric"))
    });

    // K-Means k=16 on 1000x32.
    let km_data = Matrix::from_fn(1000, 32, |i, j| ((i * 11 + j * 5) % 41) as f64 / 41.0);
    group.bench_function("kmeans_k16_1000x32", |bch| {
        bch.iter_batched(
            || rand::rngs::StdRng::seed_from_u64(7),
            |mut rng| KMeans::fit(&km_data, 16, 50, &mut rng).expect("fits"),
            BatchSize::SmallInput,
        )
    });

    // PCA fit + scoring on 1000x48.
    let pca_data = Matrix::from_fn(1000, 48, |i, j| ((i * 29 + j * 3) % 31) as f64 / 31.0);
    group.bench_function("pca_fit_1000x48", |bch| {
        bch.iter(|| Pca::fit(&pca_data, ComponentSelection::VarianceFraction(0.95)).expect("fits"))
    });
    let pca = Pca::fit(&pca_data, ComponentSelection::VarianceFraction(0.95)).expect("fits");
    group.bench_function("pca_score_1000x48", |bch| {
        bch.iter(|| pca.reconstruction_errors(&pca_data).expect("scores"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = substrate
}
criterion_main!(benches);
