//! **Beyond-paper ablation:** the CFE embedding width.
//!
//! DESIGN.md §4 argues the CFE should be *overcomplete* (latent width
//! ≥ input width): its job is reshaping the space, not compressing it,
//! and a narrow bottleneck discards the off-manifold evidence the PCA
//! stage scores. This sweep varies the latent width as a multiple of
//! the input dimensionality and reports detection quality.

use cnd_bench::{banner, row, standard_split, BENCH_SEED};
use cnd_core::cfe::CfeConfig;
use cnd_core::runner::evaluate_continual;
use cnd_core::{CndIds, CndIdsConfig};
use cnd_datasets::DatasetProfile;

fn main() {
    banner(
        "Sweep — CFE latent width (fraction of input dim)",
        "extension; justifies the overcomplete-embedding design decision",
    );
    let widths = [12, 9, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "dataset".into(),
                "latent".into(),
                "AVG".into(),
                "FwdTr".into(),
                "PR-AUC".into(),
            ],
            &widths
        )
    );
    let mut narrow_avg = 0.0;
    let mut wide_avg = 0.0;
    for profile in [DatasetProfile::UnswNb15, DatasetProfile::XIiotId] {
        let (_, split) = standard_split(profile);
        let d = split.clean_normal.cols();
        for mult in [0.25, 0.5, 1.0, 2.0, 3.0] {
            let latent = ((d as f64 * mult).round() as usize).max(2);
            let cfg = CndIdsConfig {
                cfe: CfeConfig {
                    latent_dim: latent,
                    ..CfeConfig::fast(BENCH_SEED)
                },
                pca_variance: 0.95,
            };
            let mut model = CndIds::new(cfg, &split.clean_normal).expect("model builds");
            let out = evaluate_continual(&mut model, &split).expect("run completes");
            let s = out.f1_matrix.summary();
            if mult == 0.25 {
                narrow_avg += s.avg;
            }
            if mult == 2.0 {
                wide_avg += s.avg;
            }
            println!(
                "{}",
                row(
                    &[
                        profile.name().into(),
                        format!("{latent} ({mult}d)"),
                        format!("{:.3}", s.avg),
                        format!("{:.3}", s.fwd_trans),
                        format!("{:.3}", out.final_pr_auc().unwrap_or(0.0)),
                    ],
                    &widths
                )
            );
        }
    }
    assert!(
        wide_avg > narrow_avg,
        "overcomplete embeddings must beat narrow bottlenecks ({wide_avg:.3} vs {narrow_avg:.3})"
    );
    println!("\nshape check passed: overcomplete (2d) beats narrow (d/4) embeddings");
}
