//! Regenerates **Fig. 5** (threshold-free PR-AUC of DIF, PCA and
//! CND-IDS on all datasets). The UCL baselines are excluded because they
//! produce labels, not anomaly scores — same reason as the paper.
//!
//! Paper shape: CND-IDS has the best PR-AUC on every dataset.

use cnd_bench::{banner, paper_cnd_ids, row, standard_split, BENCH_SEED};
use cnd_core::runner::{evaluate_continual, evaluate_static_detector};
use cnd_datasets::DatasetProfile;
use cnd_detectors::{DeepIsolationForest, DeepIsolationForestConfig, NoveltyDetector, PcaDetector};

fn main() {
    banner(
        "Fig. 5 — threshold-free evaluation (PR-AUC)",
        "paper Fig. 5",
    );
    let widths = [12, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "dataset".into(),
                "DIF".into(),
                "PCA".into(),
                "CND-IDS".into(),
            ],
            &widths
        )
    );
    let mut wins = 0;
    for profile in DatasetProfile::ALL {
        let (_, split) = standard_split(profile);
        let mut dif: Box<dyn NoveltyDetector> =
            Box::new(DeepIsolationForest::new(DeepIsolationForestConfig {
                seed: BENCH_SEED,
                ..Default::default()
            }));
        let dif_out = evaluate_static_detector(dif.as_mut(), &split).expect("DIF run");
        let mut pca: Box<dyn NoveltyDetector> = Box::new(PcaDetector::new(0.95));
        let pca_out = evaluate_static_detector(pca.as_mut(), &split).expect("PCA run");
        let mut cnd = paper_cnd_ids(&split);
        let cnd_out = evaluate_continual(&mut cnd, &split).expect("CND-IDS run");

        let dif_ap = dif_out.pr_auc.expect("scores exist");
        let pca_ap = pca_out.pr_auc.expect("scores exist");
        let cnd_ap = cnd_out.final_pr_auc().expect("CND-IDS produces scores");
        if cnd_ap > dif_ap && cnd_ap > pca_ap {
            wins += 1;
        }
        println!(
            "{}",
            row(
                &[
                    profile.name().into(),
                    format!("{dif_ap:.3}"),
                    format!("{pca_ap:.3}"),
                    format!("{cnd_ap:.3}"),
                ],
                &widths
            )
        );
    }
    println!("\nCND-IDS has the best PR-AUC on {wins}/4 datasets (paper: 4/4)");
    assert!(
        wins >= 3,
        "CND-IDS should lead PR-AUC on at least 3 datasets"
    );
    println!("shape check passed");
}
