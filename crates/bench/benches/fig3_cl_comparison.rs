//! Regenerates **Fig. 3** (continual-learning metrics of ADCN, LwF and
//! CND-IDS on all four datasets) and **Table II** (CND-IDS improvement
//! multipliers over the UCL baselines).
//!
//! Paper shape: CND-IDS has the best AVG and FwdTrans on every dataset,
//! the best BwdTrans on all but UNSW-NB15, and improvement multipliers
//! of 1.1x–6.5x (Table II).

use cnd_bench::{banner, paper_cnd_ids, paper_ucl, ratio, row, standard_split};
use cnd_core::baselines::UclMethod;
use cnd_core::runner::{evaluate_continual, ContinualOutcome};
use cnd_datasets::DatasetProfile;

/// Paper Table II reference multipliers: (dataset, vs-ADCN AVG, vs-ADCN
/// Fwd, vs-LwF AVG, vs-LwF Fwd).
const PAPER_TABLE2: [(&str, f64, f64, f64, f64); 4] = [
    ("X-IIoTID", 2.02, 5.00, 1.46, 1.35),
    ("WUSTL-IIoT", 4.50, 6.47, 6.11, 3.47),
    ("CICIDS2017", 1.37, 1.73, 1.93, 2.64),
    ("UNSW-NB15", 1.29, 1.44, 1.11, 1.02),
];

fn main() {
    banner(
        "Fig. 3 — ADCN vs LwF vs CND-IDS continual metrics + Table II",
        "paper Fig. 3 and Table II",
    );
    let widths = [12, 9, 9, 9, 9];
    let mut outcomes: Vec<(DatasetProfile, Vec<ContinualOutcome>)> = Vec::new();

    for profile in DatasetProfile::ALL {
        let (_, split) = standard_split(profile);
        let mut runs = Vec::new();
        let mut adcn = paper_ucl(UclMethod::Adcn, &split);
        runs.push(evaluate_continual(&mut adcn, &split).expect("ADCN run completes"));
        let mut lwf = paper_ucl(UclMethod::Lwf, &split);
        runs.push(evaluate_continual(&mut lwf, &split).expect("LwF run completes"));
        let mut cnd = paper_cnd_ids(&split);
        runs.push(evaluate_continual(&mut cnd, &split).expect("CND-IDS run completes"));

        println!("\n--- {profile} ---");
        println!(
            "{}",
            row(
                &[
                    "method".into(),
                    "AVG".into(),
                    "FwdTr".into(),
                    "BwdTr".into(),
                    "train s".into(),
                ],
                &widths
            )
        );
        for out in &runs {
            let s = out.f1_matrix.summary();
            println!(
                "{}",
                row(
                    &[
                        out.name.clone(),
                        format!("{:.3}", s.avg),
                        format!("{:.3}", s.fwd_trans),
                        format!("{:+.3}", s.bwd_trans),
                        format!("{:.1}", out.train_seconds),
                    ],
                    &widths
                )
            );
        }
        outcomes.push((profile, runs));
    }

    // Table II block: improvement multipliers.
    println!("\n--- Table II — CND-IDS improvement over UCL baselines ---");
    let w2 = [12, 12, 12, 12, 12, 24];
    println!(
        "{}",
        row(
            &[
                "dataset".into(),
                "ADCN AVG".into(),
                "ADCN Fwd".into(),
                "LwF AVG".into(),
                "LwF Fwd".into(),
                "paper (A-AVG/A-F/L-AVG/L-F)".into(),
            ],
            &w2
        )
    );
    let mut measured_means = [0.0f64; 4];
    let mut counted = [0usize; 4];
    for ((profile, runs), paper) in outcomes.iter().zip(PAPER_TABLE2) {
        let (adcn, lwf, cnd) = (&runs[0], &runs[1], &runs[2]);
        let c = cnd.f1_matrix.summary();
        let a = adcn.f1_matrix.summary();
        let l = lwf.f1_matrix.summary();
        let cells = [
            (c.avg, a.avg),
            (c.fwd_trans, a.fwd_trans),
            (c.avg, l.avg),
            (c.fwd_trans, l.fwd_trans),
        ];
        for (i, (ours, base)) in cells.iter().enumerate() {
            if *base > 0.0 {
                measured_means[i] += ours / base;
                counted[i] += 1;
            }
        }
        println!(
            "{}",
            row(
                &[
                    profile.name().into(),
                    ratio(c.avg, a.avg),
                    ratio(c.fwd_trans, a.fwd_trans),
                    ratio(c.avg, l.avg),
                    ratio(c.fwd_trans, l.fwd_trans),
                    format!(
                        "{:.2}/{:.2}/{:.2}/{:.2}",
                        paper.1, paper.2, paper.3, paper.4
                    ),
                ],
                &w2
            )
        );
    }
    print!("\naverages: ");
    let labels = ["ADCN AVG", "ADCN Fwd", "LwF AVG", "LwF Fwd"];
    for i in 0..4 {
        if counted[i] > 0 {
            print!(
                "{} {:.2}x  ",
                labels[i],
                measured_means[i] / counted[i] as f64
            );
        }
    }
    println!("(paper: ADCN AVG 1.88x, ADCN Fwd 2.63x, LwF AVG 1.78x, LwF Fwd 1.60x)");

    // Shape assertions: CND-IDS leads AVG and FwdTrans everywhere.
    for (profile, runs) in &outcomes {
        let cnd = runs[2].f1_matrix.summary();
        for baseline in &runs[..2] {
            let b = baseline.f1_matrix.summary();
            assert!(
                cnd.avg > b.avg && cnd.fwd_trans > b.fwd_trans,
                "{profile}: CND-IDS must dominate {} (AVG {:.3} vs {:.3}, Fwd {:.3} vs {:.3})",
                baseline.name,
                cnd.avg,
                b.avg,
                cnd.fwd_trans,
                b.fwd_trans
            );
        }
    }
    println!("shape check passed: CND-IDS leads AVG and FwdTrans on every dataset");
}
