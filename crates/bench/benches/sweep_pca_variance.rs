//! **Beyond-paper ablation:** the PCA explained-variance cutoff.
//!
//! The paper fixes 95% (from Rios et al.). This sweep varies the
//! retained-variance fraction of the latent PCA and reports the effect
//! on F1 and PR-AUC for two datasets. Expected trend: too low a cutoff
//! discards normal-subspace directions (benign traffic reconstructs
//! poorly → false positives); too high a cutoff starts reconstructing
//! anomalies as well (missed attacks); 0.90–0.99 is a broad plateau.

use cnd_bench::{banner, row, standard_split, BENCH_SEED};
use cnd_core::cfe::CfeConfig;
use cnd_core::runner::evaluate_continual;
use cnd_core::{CndIds, CndIdsConfig};
use cnd_datasets::DatasetProfile;

fn main() {
    banner(
        "Sweep — PCA explained-variance cutoff",
        "extension of paper Section IV-A (fixed at 95% there)",
    );
    let widths = [12, 10, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "dataset".into(),
                "variance".into(),
                "AVG".into(),
                "FwdTr".into(),
                "PR-AUC".into(),
            ],
            &widths
        )
    );
    for profile in [DatasetProfile::UnswNb15, DatasetProfile::WustlIiot] {
        let (_, split) = standard_split(profile);
        for variance in [0.80, 0.90, 0.95, 0.99] {
            let cfg = CndIdsConfig {
                cfe: CfeConfig::fast(BENCH_SEED),
                pca_variance: variance,
            };
            let mut model = CndIds::new(cfg, &split.clean_normal).expect("model builds");
            let out = evaluate_continual(&mut model, &split).expect("run completes");
            let s = out.f1_matrix.summary();
            println!(
                "{}",
                row(
                    &[
                        profile.name().into(),
                        format!("{variance:.2}"),
                        format!("{:.3}", s.avg),
                        format!("{:.3}", s.fwd_trans),
                        format!("{:.3}", out.final_pr_auc().unwrap_or(0.0)),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\nExpected: a broad plateau around the paper's 0.95 setting.");
}
