//! **Extension:** the paper's methodological claim that ROC-AUC is
//! misleading under class imbalance (Section IV-A, citing Davis &
//! Goadrich) — reproduced on the most imbalanced replica (WUSTL-IIoT,
//! 7.3% attacks) vs the most balanced one (X-IIoTID, 48.7%).
//!
//! Expectation: ROC-AUC and PR-AUC roughly agree on the balanced
//! dataset; on the imbalanced one ROC-AUC is systematically (and
//! misleadingly) higher than PR-AUC for every detector.

use cnd_bench::{banner, row, standard_split, BENCH_SEED};
use cnd_datasets::DatasetProfile;
use cnd_detectors::{DeepIsolationForest, DeepIsolationForestConfig, NoveltyDetector, PcaDetector};
use cnd_linalg::Matrix;
use cnd_metrics::curve::{pr_auc, roc_auc};

fn main() {
    banner(
        "Extension — ROC-AUC vs PR-AUC under class imbalance",
        "paper Section IV-A metric-choice argument",
    );
    let widths = [12, 12, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "dataset".into(),
                "detector".into(),
                "ROC-AUC".into(),
                "PR-AUC".into(),
                "gap".into(),
            ],
            &widths
        )
    );
    let mut balanced_gaps = Vec::new();
    let mut imbalanced_gaps = Vec::new();
    for profile in [DatasetProfile::XIiotId, DatasetProfile::WustlIiot] {
        let (data, split) = standard_split(profile);
        let tests: Vec<&Matrix> = split.experiences.iter().map(|e| &e.test_x).collect();
        let x = Matrix::vstack_all(tests).expect("stacking succeeds");
        let y: Vec<u8> = split
            .experiences
            .iter()
            .flat_map(|e| e.test_y.iter().copied())
            .collect();

        let mut dets: Vec<Box<dyn NoveltyDetector>> = vec![
            Box::new(PcaDetector::new(0.95)),
            Box::new(DeepIsolationForest::new(DeepIsolationForestConfig {
                seed: BENCH_SEED,
                ..Default::default()
            })),
        ];
        for det in dets.iter_mut() {
            det.fit(&split.clean_normal).expect("fit succeeds");
            let scores = det.anomaly_scores(&x).expect("scores");
            let roc = roc_auc(&scores, &y).expect("both classes");
            let pr = pr_auc(&scores, &y).expect("both classes");
            let gap = roc - pr;
            if data.attack_count() * 3 > data.len() {
                balanced_gaps.push(gap);
            } else {
                imbalanced_gaps.push(gap);
            }
            println!(
                "{}",
                row(
                    &[
                        profile.name().into(),
                        det.name().into(),
                        format!("{roc:.3}"),
                        format!("{pr:.3}"),
                        format!("{gap:+.3}"),
                    ],
                    &widths
                )
            );
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (bg, ig) = (mean(&balanced_gaps), mean(&imbalanced_gaps));
    println!("\nmean ROC−PR gap: balanced {bg:+.3}, imbalanced {ig:+.3}");
    assert!(
        ig > bg,
        "ROC optimism must grow with imbalance ({ig:.3} vs {bg:.3})"
    );
    println!("shape check passed: ROC-AUC flatters detectors under imbalance —");
    println!("the reason the paper (and this reproduction) report PR-AUC.");
}
