//! **Extension:** detection quality under injected input corruption.
//!
//! The resilience layer (`cnd_core::resilience`) claims that the input
//! guard + training watchdog keep the streaming pipeline's detection
//! quality intact when a fraction of incoming flows is corrupted
//! (NaN/Inf fields, huge magnitudes, truncated records). This bench
//! quantifies the claim on the X-IIoTID replica: the same seeded stream
//! is replayed at increasing corruption rates through the fault-tolerant
//! pipeline, and pooled Best-F F1 is compared against the fault-free
//! run.
//!
//! Shape check: at 5% corruption the relative F1 degradation must stay
//! under 10%, with zero panics and every reported score finite.

use cnd_bench::{banner, row, standard_split, BENCH_SEED};
use cnd_core::resilience::{Mode, ResilientConfig, ResilientStreamingCndIds, ScriptedFaults};
use cnd_core::runner::evaluate_resilient_streaming;
use cnd_core::streaming::StreamingConfig;
use cnd_core::{CndIds, CndIdsConfig};
use cnd_datasets::DatasetProfile;

fn main() {
    banner(
        "Extension — streaming F1 under injected input corruption",
        "resilience layer: quarantine + watchdog keep quality under faults",
    );
    let (_, split) = standard_split(DatasetProfile::XIiotId);

    let config = ResilientConfig {
        streaming: StreamingConfig {
            max_buffer: 1_500,
            bootstrap_batch: 600,
            min_batch: 200,
            drift_window: 100,
            drift_threshold: 3.0,
            reservoir_seed: 42,
        },
        ..ResilientConfig::default()
    };

    let widths = [8, 10, 10, 12, 9, 8, 10];
    println!(
        "{}",
        row(
            &[
                "rate".into(),
                "F1".into(),
                "ΔF1 rel".into(),
                "quarantined".into(),
                "trained".into(),
                "failed".into(),
                "mode".into(),
            ],
            &widths
        )
    );

    let mut baseline_f1 = None;
    let mut f1_at_5pct = None;
    for rate in [0.0, 0.01, 0.05, 0.10] {
        let model =
            CndIds::new(CndIdsConfig::fast(BENCH_SEED), &split.clean_normal).expect("model builds");
        let mut stream = ResilientStreamingCndIds::new(model, config).expect("valid config");
        if rate > 0.0 {
            stream.set_fault_injector(Box::new(
                ScriptedFaults::new(BENCH_SEED).with_corruption_rate(rate),
            ));
        }
        let out = evaluate_resilient_streaming(&mut stream, &split, 256)
            .expect("streaming run completes");
        let rel_drop = match baseline_f1 {
            None => {
                baseline_f1 = Some(out.pooled_f1);
                0.0
            }
            Some(base) => (base - out.pooled_f1) / base.max(1e-12),
        };
        if rate == 0.05 {
            f1_at_5pct = Some((out.pooled_f1, rel_drop));
        }
        println!(
            "{}",
            row(
                &[
                    format!("{:.0}%", rate * 100.0),
                    format!("{:.3}", out.pooled_f1),
                    format!("{:+.1}%", rel_drop * 100.0),
                    format!("{}", out.health.quarantine.total()),
                    format!("{}", out.trained),
                    format!("{}", out.failed),
                    format!("{}", out.health.mode),
                ],
                &widths
            )
        );
        assert!(out.pooled_f1.is_finite(), "pooled F1 must be finite");
        assert_eq!(
            out.health.mode,
            Mode::Normal,
            "input corruption alone must not degrade"
        );
        if rate > 0.0 {
            assert!(
                out.health.quarantine.total() > 0,
                "corruption at rate {rate} must be quarantined"
            );
        }
    }

    let base = baseline_f1.expect("fault-free run executed");
    let (f1_5, drop_5) = f1_at_5pct.expect("5% run executed");
    println!(
        "\nfault-free F1 = {base:.3}; at 5% corruption F1 = {f1_5:.3} \
         (relative degradation {:.1}%)",
        drop_5 * 100.0
    );
    assert!(
        drop_5 < 0.10,
        "5% corruption must degrade pooled F1 by < 10% relative (got {:.1}%)",
        drop_5 * 100.0
    );
    println!("shape check passed: quarantine absorbs corruption; detection quality holds.");
}
