//! **Extension:** Fig. 4 with the full detector roster and bootstrap
//! confidence intervals.
//!
//! Adds the extension baselines (raw kNN distance, Mahalanobis,
//! autoencoder reconstruction, vanilla isolation forest) to the paper's
//! four ND methods and CND-IDS, and reports 95% bootstrap intervals on
//! the pooled PR-AUC so method differences can be read against sampling
//! noise.

use cnd_bench::{banner, paper_cnd_ids, row, standard_split, BENCH_SEED};
use cnd_core::runner::evaluate_continual;
use cnd_datasets::DatasetProfile;
use cnd_detectors::{
    AutoencoderDetector, DeepIsolationForest, DeepIsolationForestConfig, IsolationForest,
    KnnAggregation, KnnDetector, LocalOutlierFactor, MahalanobisDetector, NoveltyDetector,
    OneClassSvm, OneClassSvmConfig, PcaDetector,
};
use cnd_linalg::Matrix;
use cnd_metrics::bootstrap::pr_auc_ci;

fn roster() -> Vec<Box<dyn NoveltyDetector>> {
    vec![
        Box::new(LocalOutlierFactor::new(20)),
        Box::new(OneClassSvm::new(OneClassSvmConfig {
            seed: BENCH_SEED,
            ..Default::default()
        })),
        Box::new(PcaDetector::new(0.95)),
        Box::new(DeepIsolationForest::new(DeepIsolationForestConfig {
            seed: BENCH_SEED,
            ..Default::default()
        })),
        Box::new(IsolationForest::new(100, 256, BENCH_SEED)),
        Box::new(KnnDetector::new(10, KnnAggregation::Mean)),
        Box::new(MahalanobisDetector::new(1e-6)),
        Box::new(AutoencoderDetector::new(Default::default())),
    ]
}

fn main() {
    banner(
        "Extension — Fig. 4 with full roster and 95% bootstrap CIs",
        "paper Fig. 4 / Fig. 5, extended",
    );
    let profile = DatasetProfile::UnswNb15;
    let (_, split) = standard_split(profile);
    let tests: Vec<&Matrix> = split.experiences.iter().map(|e| &e.test_x).collect();
    let x = Matrix::vstack_all(tests).expect("stacking succeeds");
    let y: Vec<u8> = split
        .experiences
        .iter()
        .flat_map(|e| e.test_y.iter().copied())
        .collect();

    let widths = [14, 10, 18];
    println!("dataset: {profile} (pooled test, n = {})", x.rows());
    println!(
        "{}",
        row(
            &["method".into(), "PR-AUC".into(), "95% CI".into(),],
            &widths
        )
    );
    let mut results: Vec<(String, f64)> = Vec::new();
    for det in roster().iter_mut() {
        det.fit(&split.clean_normal).expect("fit succeeds");
        let scores = det.anomaly_scores(&x).expect("scores");
        let ci = pr_auc_ci(&scores, &y, 300, 0.95, BENCH_SEED).expect("both classes");
        results.push((det.name().to_string(), ci.point));
        println!(
            "{}",
            row(
                &[
                    det.name().into(),
                    format!("{:.3}", ci.point),
                    format!("[{:.3}, {:.3}]", ci.lower, ci.upper),
                ],
                &widths
            )
        );
    }

    let mut cnd = paper_cnd_ids(&split);
    evaluate_continual(&mut cnd, &split).expect("run completes");
    let scores = cnd.anomaly_scores(&x).expect("scores");
    let ci = pr_auc_ci(&scores, &y, 300, 0.95, BENCH_SEED).expect("both classes");
    println!(
        "{}",
        row(
            &[
                "CND-IDS".into(),
                format!("{:.3}", ci.point),
                format!("[{:.3}, {:.3}]", ci.lower, ci.upper),
            ],
            &widths
        )
    );
    let best_static = results.iter().map(|(_, p)| *p).fold(f64::MIN, f64::max);
    println!(
        "\nCND-IDS vs best static detector: {:.3} vs {best_static:.3} ({})",
        ci.point,
        if ci.point > best_static {
            "leads"
        } else {
            "trails"
        }
    );
}
