//! Shared helpers for the CND-IDS benchmark harness.
//!
//! Every bench target (`benches/fig*.rs`, `benches/table*.rs`)
//! regenerates one table or figure of the paper. The helpers here fix the
//! common experimental setup: the seeded standard-scale dataset replicas,
//! the paper-configured models, and the table formatting used by all
//! targets so outputs are easy to diff against `EXPERIMENTS.md`.

use cnd_core::baselines::{UclBaseline, UclConfig, UclMethod};
use cnd_core::{CndIds, CndIdsConfig};
use cnd_datasets::continual::{self, ContinualSplit};
use cnd_datasets::{Dataset, DatasetProfile, GeneratorConfig};

/// The seed all bench targets use; change it to check seed-robustness.
pub const BENCH_SEED: u64 = 42;

/// Within-experience train fraction used throughout the harness.
pub const TRAIN_FRACTION: f64 = 0.7;

/// Generates the standard-scale replica of a profile and its continual
/// split, both derived from [`BENCH_SEED`].
///
/// # Panics
///
/// Panics if generation fails (impossible with the standard config).
pub fn standard_split(profile: DatasetProfile) -> (Dataset, ContinualSplit) {
    let data = profile
        .generate(&GeneratorConfig::standard(BENCH_SEED))
        .expect("standard generator config is valid");
    let split = continual::prepare(
        &data,
        profile.default_experiences(),
        TRAIN_FRACTION,
        BENCH_SEED,
    )
    .expect("standard split parameters are valid");
    (data, split)
}

/// The paper-configured CND-IDS model for a given split.
///
/// # Panics
///
/// Panics if the clean-normal subset is degenerate (cannot happen with
/// generated data).
pub fn paper_cnd_ids(split: &ContinualSplit) -> CndIds {
    CndIds::new(CndIdsConfig::paper(BENCH_SEED), &split.clean_normal)
        .expect("paper config is valid")
}

/// A paper-capacity UCL baseline for a given split.
///
/// # Panics
///
/// Panics on degenerate input (cannot happen with generated data).
pub fn paper_ucl(method: UclMethod, split: &ContinualSplit) -> UclBaseline {
    UclBaseline::new(
        method,
        split.clean_normal.cols(),
        UclConfig::paper(BENCH_SEED),
    )
    .expect("paper config is valid")
}

/// Prints a header banner for a bench target.
pub fn banner(title: &str, paper_artifact: &str) {
    println!("\n=====================================================================");
    println!("{title}");
    println!("reproduces: {paper_artifact}");
    println!("seed: {BENCH_SEED}, scale: standard (~12k samples per dataset)");
    println!("=====================================================================");
}

/// Formats one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Formats a ratio as the paper's `N.NNx` improvement multipliers.
pub fn ratio(ours: f64, baseline: f64) -> String {
    match cnd_metrics::continual::improvement_ratio(ours, baseline) {
        Some(r) => format!("{r:.2}x"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_split_shapes() {
        let (data, split) = standard_split(DatasetProfile::WustlIiot);
        assert_eq!(split.len(), 4);
        assert!(data.len() > 10_000);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(0.8, 0.4), "2.00x");
        assert_eq!(ratio(0.8, 0.0), "n/a");
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
