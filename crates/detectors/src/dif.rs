//! Deep Isolation Forest (Xu et al., TKDE 2023).
//!
//! DIF replaces iForest's axis-parallel splits with splits in the
//! representation spaces of an ensemble of *randomly initialized* (never
//! trained) neural networks: each network provides a non-linear view of
//! the data, an isolation forest is grown per view, and the final anomaly
//! score averages over views. Random representations are the paper's key
//! trick — they give the isolation mechanism oblique, non-linear
//! partitions at negligible cost.

use cnd_linalg::Matrix;
use cnd_nn::{Activation, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{DetectorError, IsolationForest, NoveltyDetector};

/// Configuration for [`DeepIsolationForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepIsolationForestConfig {
    /// Number of random-representation networks (the DIF paper uses 50
    /// representations by default; we default lower for CPU budgets).
    pub n_representations: usize,
    /// Trees per representation's isolation forest.
    pub trees_per_representation: usize,
    /// Subsample size per tree.
    pub subsample: usize,
    /// Hidden width of each random MLP.
    pub hidden_dim: usize,
    /// Output (representation) dimensionality.
    pub repr_dim: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepIsolationForestConfig {
    fn default() -> Self {
        DeepIsolationForestConfig {
            n_representations: 12,
            trees_per_representation: 15,
            subsample: 256,
            hidden_dim: 48,
            repr_dim: 12,
            seed: 0,
        }
    }
}

/// Deep Isolation Forest novelty detector.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{DeepIsolationForest, NoveltyDetector};
///
/// let train = Matrix::from_fn(256, 3, |i, j| ((i * 29 + j * 13) % 64) as f64 / 64.0);
/// let mut dif = DeepIsolationForest::new(Default::default());
/// dif.fit(&train)?;
/// let s = dif.anomaly_scores(&Matrix::from_rows(&[vec![0.5, 0.5, 0.5], vec![30.0, -30.0, 30.0]])?)?;
/// assert!(s[1] > s[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeepIsolationForest {
    config: DeepIsolationForestConfig,
    representations: Vec<Sequential>,
    forests: Vec<IsolationForest>,
    n_input: usize,
}

impl DeepIsolationForest {
    /// Creates an unfitted DIF model.
    pub fn new(config: DeepIsolationForestConfig) -> Self {
        DeepIsolationForest {
            config,
            representations: Vec::new(),
            forests: Vec::new(),
            n_input: 0,
        }
    }

    /// The configuration this model was constructed with.
    pub fn config(&self) -> &DeepIsolationForestConfig {
        &self.config
    }
}

impl NoveltyDetector for DeepIsolationForest {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let c = self.config;
        if c.n_representations == 0 || c.repr_dim == 0 || c.trees_per_representation == 0 {
            return Err(DetectorError::InvalidParameter {
                name: "n_representations/repr_dim/trees_per_representation",
                constraint: "must be >= 1",
            });
        }
        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut representations = Vec::with_capacity(c.n_representations);
        let mut forests = Vec::with_capacity(c.n_representations);
        for r in 0..c.n_representations {
            // Random, untrained representation network.
            let net = Sequential::mlp(
                &[x.cols(), c.hidden_dim, c.repr_dim],
                Activation::Tanh,
                &mut rng,
            );
            let projected = net.forward_inference(x);
            let mut forest = IsolationForest::new(
                c.trees_per_representation,
                c.subsample,
                c.seed.wrapping_add(r as u64 + 1),
            );
            forest.fit(&projected)?;
            representations.push(net);
            forests.push(forest);
        }
        self.representations = representations;
        self.forests = forests;
        self.n_input = x.cols();
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.representations.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.n_input {
            return Err(DetectorError::DimensionMismatch {
                fitted: self.n_input,
                given: x.cols(),
            });
        }
        let mut acc = vec![0.0; x.rows()];
        for (net, forest) in self.representations.iter().zip(&self.forests) {
            let projected = net.forward_inference(x);
            let s = forest.anomaly_scores(&projected)?;
            for (a, v) in acc.iter_mut().zip(s) {
                *a += v;
            }
        }
        let n = self.representations.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "DIF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_data() -> Matrix {
        Matrix::from_fn(300, 3, |i, j| ((i * 17 + j * 5) % 50) as f64 / 50.0)
    }

    #[test]
    fn detects_far_outliers() {
        let mut dif = DeepIsolationForest::new(Default::default());
        dif.fit(&train_data()).unwrap();
        let q = Matrix::from_rows(&[vec![0.5, 0.5, 0.5], vec![25.0, -25.0, 25.0]]).unwrap();
        let s = dif.anomaly_scores(&q).unwrap();
        assert!(s[1] > s[0], "{s:?}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let mut dif = DeepIsolationForest::new(Default::default());
        let x = train_data();
        dif.fit(&x).unwrap();
        let s = dif.anomaly_scores(&x).unwrap();
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = train_data();
        let mut a = DeepIsolationForest::new(Default::default());
        let mut b = DeepIsolationForest::new(Default::default());
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.anomaly_scores(&x).unwrap(), b.anomaly_scores(&x).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let x = train_data();
        let mut a = DeepIsolationForest::new(DeepIsolationForestConfig {
            seed: 1,
            ..Default::default()
        });
        let mut b = DeepIsolationForest::new(DeepIsolationForestConfig {
            seed: 2,
            ..Default::default()
        });
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_ne!(a.anomaly_scores(&x).unwrap(), b.anomaly_scores(&x).unwrap());
    }

    #[test]
    fn error_paths() {
        let dif = DeepIsolationForest::new(Default::default());
        assert_eq!(
            dif.anomaly_scores(&Matrix::zeros(1, 3)),
            Err(DetectorError::NotFitted)
        );
        let mut bad = DeepIsolationForest::new(DeepIsolationForestConfig {
            n_representations: 0,
            ..Default::default()
        });
        assert!(matches!(
            bad.fit(&train_data()),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut fitted = DeepIsolationForest::new(Default::default());
        fitted.fit(&train_data()).unwrap();
        assert!(matches!(
            fitted.anomaly_scores(&Matrix::zeros(1, 7)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
        let mut empty = DeepIsolationForest::new(Default::default());
        assert_eq!(
            empty.fit(&Matrix::zeros(0, 3)),
            Err(DetectorError::EmptyInput)
        );
    }
}
