//! ν-one-class SVM on random Fourier features (Schölkopf et al., 2001;
//! Rahimi & Recht, 2007).
//!
//! The exact kernel OC-SVM solves
//! `min ½‖w‖² − ρ + 1/(νn) Σ max(0, ρ − w·φ(xᵢ))`
//! in an RKHS. We approximate the RBF kernel `exp(−γ‖x−y‖²)` with `D`
//! random Fourier features `φ(x) = sqrt(2/D) cos(Ωx + b)` and solve the
//! now-linear objective with subgradient descent, jointly updating the
//! offset `ρ`. This is the standard large-scale approximation; at the
//! dataset sizes used here the decision function converges to the kernel
//! machine's (see DESIGN.md §1).

use cnd_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DetectorError, NoveltyDetector};

/// Configuration for [`OneClassSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneClassSvmConfig {
    /// Fraction of training points allowed outside the learned region
    /// (also a lower bound on the support-vector fraction). Must be in
    /// `(0, 1]`. The classical default is `0.1`.
    pub nu: f64,
    /// RBF kernel bandwidth `γ`; `None` selects `1 / (d · var)` at fit
    /// time ("scale" heuristic).
    pub gamma: Option<f64>,
    /// Number of random Fourier features.
    pub n_features: usize,
    /// Subgradient-descent epochs.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / sqrt(t)`).
    pub learning_rate: f64,
    /// RNG seed for the random feature map and data shuffling.
    pub seed: u64,
}

impl Default for OneClassSvmConfig {
    fn default() -> Self {
        OneClassSvmConfig {
            nu: 0.1,
            gamma: None,
            n_features: 128,
            epochs: 30,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// ν-one-class SVM novelty detector (RFF approximation).
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{NoveltyDetector, OneClassSvm};
///
/// let train = Matrix::from_fn(300, 2, |i, j| ((i * 37 + j * 11) % 40) as f64 / 40.0);
/// let mut svm = OneClassSvm::new(Default::default());
/// svm.fit(&train)?;
/// let s = svm.anomaly_scores(&Matrix::from_rows(&[vec![0.5, 0.5], vec![8.0, -8.0]])?)?;
/// assert!(s[1] > s[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    config: OneClassSvmConfig,
    /// Random projection matrix Ω, shape `(input_dim, n_features)`.
    omega: Option<Matrix>,
    /// Random phases b, length `n_features`.
    phases: Vec<f64>,
    /// Linear weights in feature space.
    w: Vec<f64>,
    /// Learned offset ρ.
    rho: f64,
    n_input: usize,
}

impl OneClassSvm {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: OneClassSvmConfig) -> Self {
        OneClassSvm {
            config,
            omega: None,
            phases: Vec::new(),
            w: Vec::new(),
            rho: 0.0,
            n_input: 0,
        }
    }

    /// The configuration this model was constructed with.
    pub fn config(&self) -> &OneClassSvmConfig {
        &self.config
    }

    /// Learned offset ρ (decision threshold in feature space).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Maps a batch through the random Fourier feature map.
    fn featurize(&self, x: &Matrix) -> Result<Matrix, DetectorError> {
        let omega = self.omega.as_ref().ok_or(DetectorError::NotFitted)?;
        let proj = x.matmul(omega)?;
        let d = self.config.n_features as f64;
        let scale = (2.0 / d).sqrt();
        let mut out = proj;
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (v, &b) in row.iter_mut().zip(&self.phases) {
                *v = scale * (*v + b).cos();
            }
        }
        Ok(out)
    }

    /// Decision function `w·φ(x) − ρ`; positive inside the region.
    fn decision(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let phi = self.featurize(x)?;
        Ok(phi
            .iter_rows()
            .map(|r| vector::dot(r, &self.w) - self.rho)
            .collect())
    }
}

impl NoveltyDetector for OneClassSvm {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let c = self.config;
        if !(c.nu > 0.0 && c.nu <= 1.0) {
            return Err(DetectorError::InvalidParameter {
                name: "nu",
                constraint: "must be in (0, 1]",
            });
        }
        if c.n_features == 0 || c.epochs == 0 {
            return Err(DetectorError::InvalidParameter {
                name: "n_features/epochs",
                constraint: "must be >= 1",
            });
        }
        let mut rng = StdRng::seed_from_u64(c.seed);
        let gamma = c.gamma.unwrap_or_else(|| {
            let var = cnd_linalg::stats::column_variances(x)
                .map(|v| v.iter().sum::<f64>())
                .unwrap_or(1.0)
                .max(1e-9);
            1.0 / var
        });
        // Ω ~ N(0, 2γ I): sample via Box–Muller.
        let std = (2.0 * gamma).sqrt();
        self.omega = Some(Matrix::from_fn(x.cols(), c.n_features, |_, _| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }));
        self.phases = (0..c.n_features)
            .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
            .collect();
        self.n_input = x.cols();
        self.w = vec![0.0; c.n_features];
        self.rho = 0.0;

        let phi = self.featurize(x)?;
        let n = phi.rows();
        let inv_nu_n = 1.0 / (c.nu * n as f64);
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0u64;
        for _epoch in 0..c.epochs {
            // Shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                t += 1;
                let lr = c.learning_rate / (t as f64).sqrt();
                let row = phi.row(i);
                let margin = vector::dot(row, &self.w) - self.rho;
                // Gradient of ½‖w‖² is w (applied per-sample scaled by 1/n).
                for (wj, &pj) in self.w.iter_mut().zip(row) {
                    let mut g = *wj / n as f64;
                    if margin < 0.0 {
                        g -= inv_nu_n * pj;
                    }
                    *wj -= lr * g * n as f64; // per-sample scaling folded back
                }
                // dL/dρ = −1/n + (1/νn)·1[margin < 0] per sample.
                let g_rho = -1.0 / n as f64 + if margin < 0.0 { inv_nu_n } else { 0.0 };
                self.rho -= lr * g_rho * n as f64;
            }
        }
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.omega.is_none() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.n_input {
            return Err(DetectorError::DimensionMismatch {
                fitted: self.n_input,
                given: x.cols(),
            });
        }
        // Higher = more anomalous: negate the decision function.
        Ok(self.decision(x)?.into_iter().map(|d| -d).collect())
    }

    fn name(&self) -> &'static str {
        "OC-SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, cx: f64, cy: f64) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| {
            let noise = (((i * 31 + j * 57) % 100) as f64 / 100.0 - 0.5) * 0.6;
            if j == 0 {
                cx + noise
            } else {
                cy + noise
            }
        })
    }

    #[test]
    fn far_points_score_higher() {
        let train = blob(400, 0.0, 0.0);
        let mut svm = OneClassSvm::new(OneClassSvmConfig {
            seed: 5,
            ..Default::default()
        });
        svm.fit(&train).unwrap();
        let q = Matrix::from_rows(&[vec![0.0, 0.0], vec![6.0, 6.0]]).unwrap();
        let s = svm.anomaly_scores(&q).unwrap();
        assert!(s[1] > s[0], "{s:?}");
    }

    #[test]
    fn roughly_nu_fraction_outside() {
        let train = blob(500, 0.0, 0.0);
        let nu = 0.2;
        let mut svm = OneClassSvm::new(OneClassSvmConfig {
            nu,
            epochs: 60,
            seed: 2,
            ..Default::default()
        });
        svm.fit(&train).unwrap();
        let s = svm.anomaly_scores(&train).unwrap();
        let outside = s.iter().filter(|&&v| v > 0.0).count() as f64 / s.len() as f64;
        // ν property holds approximately for the SGD solution.
        assert!(
            (outside - nu).abs() < 0.15,
            "outside fraction = {outside}, nu = {nu}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blob(100, 1.0, -1.0);
        let cfg = OneClassSvmConfig {
            seed: 9,
            epochs: 5,
            ..Default::default()
        };
        let mut a = OneClassSvm::new(cfg);
        let mut b = OneClassSvm::new(cfg);
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(
            a.anomaly_scores(&train).unwrap(),
            b.anomaly_scores(&train).unwrap()
        );
    }

    #[test]
    fn validates_parameters() {
        let x = Matrix::filled(10, 2, 0.0);
        let mut bad_nu = OneClassSvm::new(OneClassSvmConfig {
            nu: 0.0,
            ..Default::default()
        });
        assert!(matches!(
            bad_nu.fit(&x),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut bad_feats = OneClassSvm::new(OneClassSvmConfig {
            n_features: 0,
            ..Default::default()
        });
        assert!(matches!(
            bad_feats.fit(&x),
            Err(DetectorError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn unfitted_and_dim_checks() {
        let svm = OneClassSvm::new(Default::default());
        assert_eq!(
            svm.anomaly_scores(&Matrix::zeros(1, 2)),
            Err(DetectorError::NotFitted)
        );
        let mut fitted = OneClassSvm::new(Default::default());
        fitted.fit(&blob(50, 0.0, 0.0)).unwrap();
        assert!(matches!(
            fitted.anomaly_scores(&Matrix::zeros(1, 4)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        let mut svm = OneClassSvm::new(Default::default());
        assert_eq!(
            svm.fit(&Matrix::zeros(0, 2)),
            Err(DetectorError::EmptyInput)
        );
    }
}
