use std::error::Error;
use std::fmt;

use cnd_linalg::LinalgError;
use cnd_ml::MlError;
use cnd_nn::NnError;

/// Error type for novelty detectors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DetectorError {
    /// `anomaly_scores` was called before `fit`.
    NotFitted,
    /// `fit` received an empty dataset.
    EmptyInput,
    /// Scoring input feature count differs from the fitted data.
    DimensionMismatch {
        /// Feature count at fit time.
        fitted: usize,
        /// Feature count of the new input.
        given: usize,
    },
    /// A hyper-parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
    /// An underlying matrix operation failed.
    Linalg(LinalgError),
    /// An underlying classical-ML estimator failed.
    Ml(MlError),
    /// An underlying neural-network operation failed.
    Nn(NnError),
    /// An out-of-core chunk source failed (IO, corruption, format).
    ///
    /// Carries the rendered message rather than the source error so the
    /// enum stays `Clone + PartialEq`.
    Storage(String),
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::NotFitted => write!(f, "detector used before fit"),
            DetectorError::EmptyInput => write!(f, "fit requires a non-empty dataset"),
            DetectorError::DimensionMismatch { fitted, given } => {
                write!(
                    f,
                    "detector fitted on {fitted} features but input has {given}"
                )
            }
            DetectorError::InvalidParameter { name, constraint } => {
                write!(f, "parameter {name} violates constraint: {constraint}")
            }
            DetectorError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            DetectorError::Ml(e) => write!(f, "ml estimator error: {e}"),
            DetectorError::Nn(e) => write!(f, "neural network error: {e}"),
            DetectorError::Storage(msg) => write!(f, "chunk source failed: {msg}"),
        }
    }
}

impl Error for DetectorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DetectorError::Linalg(e) => Some(e),
            DetectorError::Ml(e) => Some(e),
            DetectorError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for DetectorError {
    fn from(e: LinalgError) -> Self {
        DetectorError::Linalg(e)
    }
}

impl From<MlError> for DetectorError {
    fn from(e: MlError) -> Self {
        DetectorError::Ml(e)
    }
}

impl From<NnError> for DetectorError {
    fn from(e: NnError) -> Self {
        DetectorError::Nn(e)
    }
}

impl From<cnd_store::StoreError> for DetectorError {
    fn from(e: cnd_store::StoreError) -> Self {
        DetectorError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DetectorError::NotFitted.to_string().contains("before fit"));
        let e = DetectorError::from(MlError::EmptyInput);
        assert!(e.to_string().contains("ml estimator"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DetectorError>();
    }
}
