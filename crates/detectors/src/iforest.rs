//! Isolation Forest (Liu, Ting & Zhou, ICDM 2008).
//!
//! Each isolation tree recursively splits a random subsample on a random
//! feature at a random threshold; anomalous points isolate in few splits.
//! The anomaly score is `2^(−E[h(x)] / c(ψ))` where `E[h(x)]` is the
//! average path length across trees and `c(ψ)` the expected path length
//! of an unsuccessful BST search over the subsample size `ψ`.

use cnd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DetectorError, NoveltyDetector};

/// One node of an isolation tree.
#[derive(Debug, Clone)]
enum Node {
    Internal {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        /// Number of training samples that reached this leaf; path
        /// lengths are extended by `c(size)` per the original paper.
        size: usize,
    },
}

/// Expected path length of an unsuccessful search in a BST of `n` nodes,
/// `c(n) = 2 H(n−1) − 2(n−1)/n`, with `H` approximated via `ln + γ`.
fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let nf = n as f64;
            // Euler–Mascheroni constant (std's EGAMMA is still unstable).
            const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
            let harmonic = (nf - 1.0).ln() + EULER_GAMMA;
            2.0 * harmonic - 2.0 * (nf - 1.0) / nf
        }
    }
}

fn build_tree<R: Rng + ?Sized>(
    x: &Matrix,
    indices: &[usize],
    depth: usize,
    max_depth: usize,
    rng: &mut R,
) -> Node {
    if indices.len() <= 1 || depth >= max_depth {
        return Node::Leaf {
            size: indices.len(),
        };
    }
    // Pick a feature with spread; give up after a few attempts (constant
    // data region).
    for _ in 0..8 {
        let feature = rng.gen_range(0..x.cols());
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in indices {
            let v = x[(i, feature)];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi - lo <= 1e-15 {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[(i, feature)] < threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            continue;
        }
        let left = build_tree(x, &left_idx, depth + 1, max_depth, rng);
        let right = build_tree(x, &right_idx, depth + 1, max_depth, rng);
        return Node::Internal {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        };
    }
    Node::Leaf {
        size: indices.len(),
    }
}

fn path_length(node: &Node, row: &[f64], depth: f64) -> f64 {
    match node {
        Node::Leaf { size } => depth + average_path_length(*size),
        Node::Internal {
            feature,
            threshold,
            left,
            right,
        } => {
            if row[*feature] < *threshold {
                path_length(left, row, depth + 1.0)
            } else {
                path_length(right, row, depth + 1.0)
            }
        }
    }
}

/// An isolation-forest novelty detector.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{IsolationForest, NoveltyDetector};
///
/// let x = Matrix::from_fn(200, 2, |i, j| ((i * 13 + j * 7) % 50) as f64 / 50.0);
/// let mut f = IsolationForest::new(100, 128, 7);
/// f.fit(&x)?;
/// let s = f.anomaly_scores(&Matrix::from_rows(&[vec![0.5, 0.5], vec![9.0, 9.0]])?)?;
/// assert!(s[1] > s[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IsolationForest {
    n_trees: usize,
    subsample: usize,
    seed: u64,
    trees: Vec<Node>,
    /// Normalizer c(ψ) for the fitted subsample size.
    c_psi: f64,
    n_features: usize,
}

impl IsolationForest {
    /// Creates an unfitted forest.
    ///
    /// `n_trees` trees are grown on subsamples of size `subsample`
    /// (clamped to the dataset size at fit time); the canonical values
    /// are 100 trees of 256 samples.
    pub fn new(n_trees: usize, subsample: usize, seed: u64) -> Self {
        IsolationForest {
            n_trees,
            subsample,
            seed,
            trees: Vec::new(),
            c_psi: 0.0,
            n_features: 0,
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }
}

impl NoveltyDetector for IsolationForest {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        if self.n_trees == 0 || self.subsample < 2 {
            return Err(DetectorError::InvalidParameter {
                name: "n_trees/subsample",
                constraint: "n_trees >= 1 and subsample >= 2",
            });
        }
        let psi = self.subsample.min(x.rows());
        let max_depth = (psi as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trees = Vec::with_capacity(self.n_trees);
        for _ in 0..self.n_trees {
            // Sample ψ distinct indices (partial Fisher–Yates).
            let mut pool: Vec<usize> = (0..x.rows()).collect();
            for i in 0..psi {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let sample = &pool[..psi];
            trees.push(build_tree(x, sample, 0, max_depth.max(1), &mut rng));
        }
        self.trees = trees;
        self.c_psi = average_path_length(psi).max(1e-12);
        self.n_features = x.cols();
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.trees.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(DetectorError::DimensionMismatch {
                fitted: self.n_features,
                given: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        for row in x.iter_rows() {
            let mean_path: f64 = self
                .trees
                .iter()
                .map(|t| path_length(t, row, 0.0))
                .sum::<f64>()
                / self.trees.len() as f64;
            out.push(2f64.powf(-mean_path / self.c_psi));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "IsolationForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_square(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| {
            // Deterministic low-discrepancy-ish fill of [0,1]^2.
            ((i * 2654435761 + j * 40503) % 10007) as f64 / 10007.0
        })
    }

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let x = uniform_square(300);
        let mut f = IsolationForest::new(100, 128, 3);
        f.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![0.5, 0.5], vec![10.0, 10.0]]).unwrap();
        let s = f.anomaly_scores(&q).unwrap();
        assert!(s[1] > s[0] + 0.1, "{s:?}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let x = uniform_square(200);
        let mut f = IsolationForest::new(50, 64, 1);
        f.fit(&x).unwrap();
        let s = f.anomaly_scores(&x).unwrap();
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn average_path_length_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ≈ 10.24 (known reference value).
        assert!((average_path_length(256) - 10.24).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = uniform_square(100);
        let mut a = IsolationForest::new(20, 32, 9);
        let mut b = IsolationForest::new(20, 32, 9);
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.anomaly_scores(&x).unwrap(), b.anomaly_scores(&x).unwrap());
    }

    #[test]
    fn unfitted_and_bad_params() {
        let f = IsolationForest::new(10, 32, 0);
        assert_eq!(
            f.anomaly_scores(&Matrix::zeros(1, 2)),
            Err(DetectorError::NotFitted)
        );
        let mut g = IsolationForest::new(0, 32, 0);
        assert!(matches!(
            g.fit(&Matrix::zeros(5, 2)),
            Err(DetectorError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn dimension_mismatch() {
        let x = uniform_square(50);
        let mut f = IsolationForest::new(10, 16, 0);
        f.fit(&x).unwrap();
        assert!(matches!(
            f.anomaly_scores(&Matrix::zeros(1, 5)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn constant_data_scores_uniformly() {
        let x = Matrix::filled(64, 3, 1.0);
        let mut f = IsolationForest::new(20, 32, 0);
        f.fit(&x).unwrap();
        let s = f.anomaly_scores(&x).unwrap();
        let first = s[0];
        assert!(s.iter().all(|&v| (v - first).abs() < 1e-12));
    }
}
