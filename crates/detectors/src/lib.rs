//! # cnd-detectors
//!
//! From-scratch implementations of every novelty-detection baseline the
//! CND-IDS paper compares against (Section IV-A / Fig. 4):
//!
//! * [`LocalOutlierFactor`] — LOF in novelty mode (Breunig et al.),
//!   exact brute-force k-nearest-neighbour computation.
//! * [`OneClassSvm`] — ν-one-class SVM trained on a random-Fourier-feature
//!   approximation of the RBF kernel with projected subgradient descent
//!   (the standard large-scale approximation; see DESIGN.md §1 for the
//!   substitution rationale).
//! * [`IsolationForest`] — Liu et al.'s iForest with subsampled trees and
//!   the canonical average-path-length normalization.
//! * [`DeepIsolationForest`] — Xu et al.'s DIF: an ensemble of
//!   randomly-initialized MLP representations, each scored by its own
//!   isolation forest, averaged.
//! * [`PcaDetector`] — plain PCA reconstruction error (the non-continual
//!   ancestor of CND-IDS's novelty detector).
//!
//! Two extension baselines beyond the paper's roster round out the
//! comparison in the extended benches:
//!
//! * [`KnnDetector`] — raw k-nearest-neighbour distance (the
//!   unnormalized signal LOF builds on).
//! * [`MahalanobisDetector`] — single-Gaussian Mahalanobis distance
//!   (direction-aware parametric baseline).
//! * [`AutoencoderDetector`] — MLP autoencoder reconstruction error
//!   (the non-linear counterpart of [`PcaDetector`]).
//!
//! All detectors implement the object-safe [`NoveltyDetector`] trait:
//! `fit` on (assumed mostly normal) training data, then
//! [`anomaly_scores`](NoveltyDetector::anomaly_scores) where **higher
//! scores mean more anomalous** — the orientation expected by the
//! Best-F thresholding and PR-AUC code in `cnd-metrics`.
//!
//! # Example
//!
//! ```
//! use cnd_linalg::Matrix;
//! use cnd_detectors::{IsolationForest, NoveltyDetector};
//!
//! let train = Matrix::from_fn(256, 2, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
//! let mut forest = IsolationForest::new(50, 64, 42);
//! forest.fit(&train)?;
//! let far = Matrix::from_rows(&[vec![50.0, -50.0]])?;
//! let near = train.slice_rows(0, 1)?;
//! let s = forest.anomaly_scores(&far.vstack(&near)?)?;
//! assert!(s[0] > s[1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoencoder;
mod dif;
mod error;
mod iforest;
mod knn;
mod lof;
mod mahalanobis;
mod ocsvm;
mod pca_detector;

pub use autoencoder::{AutoencoderConfig, AutoencoderDetector};
pub use dif::{DeepIsolationForest, DeepIsolationForestConfig};
pub use error::DetectorError;
pub use iforest::IsolationForest;
pub use knn::{KnnAggregation, KnnDetector};
pub use lof::LocalOutlierFactor;
pub use mahalanobis::MahalanobisDetector;
pub use ocsvm::{OneClassSvm, OneClassSvmConfig};
pub use pca_detector::PcaDetector;

use cnd_linalg::Matrix;
use cnd_store::RowChunk;

/// Common interface for all novelty detectors.
///
/// Detectors are fitted on (assumed normal) training data and then score
/// arbitrary batches; **higher scores indicate more anomalous samples**.
/// The trait is object-safe so the experiment runner can iterate over a
/// heterogeneous `Vec<Box<dyn NoveltyDetector>>`.
pub trait NoveltyDetector {
    /// Fits the detector to training data (one sample per row).
    ///
    /// # Errors
    ///
    /// Implementations reject empty input and may propagate numeric
    /// failures.
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError>;

    /// Scores each row of `x`; higher means more anomalous.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::NotFitted`] before `fit` and dimension
    /// errors when the feature count differs from the fitted data.
    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError>;

    /// Short human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;
}

/// Scores a `.cnds` chunk stream against any fitted detector, one slab
/// at a time — peak memory is one [`RowChunk`] regardless of store
/// size.
///
/// A free function (not a trait method) so [`NoveltyDetector`] stays
/// object-safe; it takes `&dyn` and therefore works on the runner's
/// heterogeneous `Vec<Box<dyn NoveltyDetector>>`. Yields
/// `(start_row, scores)` per chunk. Detector scoring is row-independent
/// for every implementation in this crate, so concatenated chunked
/// scores are bitwise identical to scoring the materialized matrix.
pub fn score_chunks<'a, E, I>(
    detector: &'a dyn NoveltyDetector,
    chunks: I,
) -> impl Iterator<Item = Result<(u64, Vec<f64>), DetectorError>> + 'a
where
    DetectorError: From<E>,
    I: IntoIterator<Item = Result<RowChunk, E>>,
    I::IntoIter: 'a,
{
    chunks.into_iter().map(move |chunk| {
        let chunk = chunk?;
        let scores = detector.anomaly_scores(&chunk.rows)?;
        cnd_obs::counter_add("detector.score_chunks.rows.count", scores.len() as u64);
        Ok((chunk.start, scores))
    })
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn takes_boxed(_: &dyn NoveltyDetector) {}
        let d = IsolationForest::new(5, 16, 0);
        takes_boxed(&d);
    }

    #[test]
    fn chunked_scoring_matches_in_memory_bitwise() {
        let train = Matrix::from_fn(256, 3, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
        let mut forest = IsolationForest::new(20, 64, 42);
        forest.fit(&train).unwrap();
        let test = Matrix::from_fn(101, 3, |i, j| ((i * 13 + j * 7) % 89) as f64 / 11.0);
        let oracle = forest.anomaly_scores(&test).unwrap();

        let path = std::env::temp_dir().join(format!("cnd_det_chunks_{}.cnds", std::process::id()));
        let mut w =
            cnd_store::StoreWriter::create(&path, test.cols(), cnd_store::DType::F64, false)
                .unwrap();
        w.push_matrix(&test, &[]).unwrap();
        w.finalize().unwrap();
        let store = cnd_store::FlowStore::open(&path).unwrap();

        for chunk_rows in [1usize, 10, 101, 500] {
            let mut streamed = Vec::new();
            for part in score_chunks(&forest, store.chunks(chunk_rows).unwrap()) {
                let (start, scores) = part.unwrap();
                assert_eq!(start as usize, streamed.len());
                streamed.extend_from_slice(&scores);
            }
            assert_eq!(streamed, oracle, "chunk_rows={chunk_rows}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
