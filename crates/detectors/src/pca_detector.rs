//! PCA reconstruction-error novelty detection — the static (non-continual)
//! baseline from Rios et al. that CND-IDS builds on.

use cnd_linalg::Matrix;
use cnd_ml::pca::{ComponentSelection, Pca};
use cnd_ml::StandardScaler;

use crate::{DetectorError, NoveltyDetector};

/// PCA-FRE novelty detector: standardize, fit PCA on normal training
/// data keeping a variance fraction (paper: 95%), score by squared
/// reconstruction error.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{NoveltyDetector, PcaDetector};
///
/// // Train on a 1-D manifold inside 3-D space.
/// let train = Matrix::from_fn(100, 3, |i, j| (i as f64 / 10.0) * (j + 1) as f64);
/// let mut det = PcaDetector::new(0.95);
/// det.fit(&train)?;
/// let s = det.anomaly_scores(&Matrix::from_rows(&[
///     vec![5.0, 10.0, 15.0],  // on-manifold
///     vec![5.0, -10.0, 15.0], // off-manifold
/// ])?)?;
/// assert!(s[1] > s[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PcaDetector {
    variance_fraction: f64,
    scaler: Option<StandardScaler>,
    pca: Option<Pca>,
}

impl PcaDetector {
    /// Creates an unfitted detector keeping the given explained-variance
    /// fraction (the paper uses `0.95`).
    pub fn new(variance_fraction: f64) -> Self {
        PcaDetector {
            variance_fraction,
            scaler: None,
            pca: None,
        }
    }

    /// Number of retained components (after fitting).
    pub fn n_components(&self) -> Option<usize> {
        self.pca.as_ref().map(Pca::n_components)
    }
}

impl NoveltyDetector for PcaDetector {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        if !(self.variance_fraction > 0.0 && self.variance_fraction <= 1.0) {
            return Err(DetectorError::InvalidParameter {
                name: "variance_fraction",
                constraint: "must be in (0, 1]",
            });
        }
        let scaler = StandardScaler::fit(x)?;
        let z = scaler.transform(x)?;
        let pca = Pca::fit(
            &z,
            ComponentSelection::VarianceFraction(self.variance_fraction),
        )?;
        self.scaler = Some(scaler);
        self.pca = Some(pca);
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let scaler = self.scaler.as_ref().ok_or(DetectorError::NotFitted)?;
        let pca = self.pca.as_ref().ok_or(DetectorError::NotFitted)?;
        let z = scaler.transform(x)?;
        Ok(pca.reconstruction_errors(&z)?)
    }

    fn name(&self) -> &'static str {
        "PCA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifold_data() -> Matrix {
        Matrix::from_fn(80, 4, |i, j| {
            let t = i as f64 * 0.1;
            match j {
                0 => t,
                1 => 2.0 * t,
                2 => -t,
                _ => 0.5 * t,
            }
        })
    }

    #[test]
    fn off_manifold_scores_higher() {
        let mut det = PcaDetector::new(0.95);
        det.fit(&manifold_data()).unwrap();
        let q = Matrix::from_rows(&[vec![4.0, 8.0, -4.0, 2.0], vec![4.0, 8.0, 4.0, 2.0]]).unwrap();
        let s = det.anomaly_scores(&q).unwrap();
        assert!(s[1] > s[0] * 10.0, "{s:?}");
    }

    #[test]
    fn keeps_one_component_for_line() {
        let mut det = PcaDetector::new(0.95);
        det.fit(&manifold_data()).unwrap();
        assert_eq!(det.n_components(), Some(1));
    }

    #[test]
    fn error_paths() {
        let det = PcaDetector::new(0.95);
        assert_eq!(
            det.anomaly_scores(&Matrix::zeros(1, 4)),
            Err(DetectorError::NotFitted)
        );
        let mut bad = PcaDetector::new(0.0);
        assert!(matches!(
            bad.fit(&manifold_data()),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut empty = PcaDetector::new(0.95);
        assert_eq!(
            empty.fit(&Matrix::zeros(0, 4)),
            Err(DetectorError::EmptyInput)
        );
    }

    #[test]
    fn name() {
        assert_eq!(PcaDetector::new(0.95).name(), "PCA");
    }
}
