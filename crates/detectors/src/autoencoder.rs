//! Autoencoder reconstruction-error novelty detection.
//!
//! The classic deep unsupervised ML-IDS baseline (paper Section II cites
//! autoencoders among the standard unsupervised models): train an MLP
//! autoencoder on (assumed normal) data and score queries by input-space
//! reconstruction error. Complements [`crate::PcaDetector`] — the same
//! principle with a non-linear, learned manifold — and isolates what the
//! full CND-IDS adds on top of plain reconstruction (pseudo-labels,
//! triplet separation, continual updates, latent PCA).

use cnd_linalg::Matrix;
use cnd_ml::StandardScaler;
use cnd_nn::{loss, Activation, Adam, Sequential};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DetectorError, NoveltyDetector};

/// Configuration for [`AutoencoderDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoencoderConfig {
    /// Hidden-layer width.
    pub hidden_dim: usize,
    /// Bottleneck width (input-relative defaults are fine: the detector
    /// clamps to at least 2 and at most the input width).
    pub latent_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        AutoencoderConfig {
            hidden_dim: 64,
            latent_dim: 16,
            epochs: 15,
            batch_size: 128,
            learning_rate: 0.002,
            seed: 0,
        }
    }
}

/// MLP autoencoder novelty detector scoring by reconstruction MSE.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{AutoencoderDetector, NoveltyDetector};
///
/// // Normal data on a curve; anomalies off it.
/// let train = Matrix::from_fn(300, 3, |i, j| {
///     let t = i as f64 * 0.05;
///     match j { 0 => t.sin(), 1 => t.cos(), _ => t.sin() * t.cos() }
/// });
/// let mut det = AutoencoderDetector::new(Default::default());
/// det.fit(&train)?;
/// let s = det.anomaly_scores(&Matrix::from_rows(&[
///     vec![0.5, 0.86, 0.43],  // near the manifold
///     vec![3.0, -3.0, 3.0],   // far off it
/// ])?)?;
/// assert!(s[1] > s[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AutoencoderDetector {
    config: AutoencoderConfig,
    scaler: Option<StandardScaler>,
    encoder: Option<Sequential>,
    decoder: Option<Sequential>,
}

impl AutoencoderDetector {
    /// Creates an unfitted detector.
    pub fn new(config: AutoencoderConfig) -> Self {
        AutoencoderDetector {
            config,
            scaler: None,
            encoder: None,
            decoder: None,
        }
    }
}

impl NoveltyDetector for AutoencoderDetector {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let c = self.config;
        if c.hidden_dim == 0 || c.epochs == 0 || c.batch_size == 0 {
            return Err(DetectorError::InvalidParameter {
                name: "hidden_dim/epochs/batch_size",
                constraint: "must be >= 1",
            });
        }
        let latent = c.latent_dim.clamp(2, x.cols().max(2));
        let mut rng = StdRng::seed_from_u64(c.seed);
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x)?;
        let mut encoder = Sequential::mlp(
            &[x.cols(), c.hidden_dim, latent],
            Activation::Tanh,
            &mut rng,
        );
        let mut decoder = Sequential::mlp(
            &[latent, c.hidden_dim, x.cols()],
            Activation::Tanh,
            &mut rng,
        );
        let mut opt = Adam::new(c.learning_rate);
        let n = xs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..c.epochs {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(c.batch_size) {
                let xb = xs.select_rows(chunk)?;
                encoder.zero_grad();
                decoder.zero_grad();
                let h = encoder.forward(&xb);
                let y = decoder.forward(&h);
                let (_l, d) = loss::mse(&y, &xb)?;
                let dh = decoder.backward(&d)?;
                encoder.backward(&dh)?;
                encoder.apply_gradients_offset(&mut opt, 0);
                decoder.apply_gradients_offset(&mut opt, 100_000);
            }
        }
        self.scaler = Some(scaler);
        self.encoder = Some(encoder);
        self.decoder = Some(decoder);
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let scaler = self.scaler.as_ref().ok_or(DetectorError::NotFitted)?;
        let encoder = self.encoder.as_ref().ok_or(DetectorError::NotFitted)?;
        let decoder = self.decoder.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != scaler.mean().len() {
            return Err(DetectorError::DimensionMismatch {
                fitted: scaler.mean().len(),
                given: x.cols(),
            });
        }
        let xs = scaler.transform(x)?;
        let y = decoder.forward_inference(&encoder.forward_inference(&xs));
        let diff = xs.sub(&y)?;
        Ok(diff
            .iter_rows()
            .map(|r| r.iter().map(|v| v * v).sum::<f64>() / r.len() as f64)
            .collect())
    }

    fn name(&self) -> &'static str {
        "Autoencoder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifold() -> Matrix {
        Matrix::from_fn(400, 4, |i, j| {
            let t = i as f64 * 0.03;
            match j {
                0 => t.sin(),
                1 => t.cos(),
                2 => (2.0 * t).sin() * 0.5,
                _ => t.sin() + t.cos(),
            }
        })
    }

    #[test]
    fn detects_off_manifold_points() {
        let mut det = AutoencoderDetector::new(AutoencoderConfig {
            latent_dim: 2,
            ..Default::default()
        });
        det.fit(&manifold()).unwrap();
        let on = manifold().slice_rows(0, 20).unwrap();
        let off = Matrix::filled(20, 4, 5.0);
        let s_on = det.anomaly_scores(&on).unwrap();
        let s_off = det.anomaly_scores(&off).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&s_off) > 3.0 * mean(&s_on),
            "on {:.4} off {:.4}",
            mean(&s_on),
            mean(&s_off)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let x = manifold();
        let mut a = AutoencoderDetector::new(Default::default());
        let mut b = AutoencoderDetector::new(Default::default());
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.anomaly_scores(&x).unwrap(), b.anomaly_scores(&x).unwrap());
    }

    #[test]
    fn error_paths() {
        let det = AutoencoderDetector::new(Default::default());
        assert_eq!(
            det.anomaly_scores(&Matrix::zeros(1, 4)),
            Err(DetectorError::NotFitted)
        );
        let mut bad = AutoencoderDetector::new(AutoencoderConfig {
            epochs: 0,
            ..Default::default()
        });
        assert!(matches!(
            bad.fit(&manifold()),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut fitted = AutoencoderDetector::new(Default::default());
        fitted.fit(&manifold()).unwrap();
        assert!(matches!(
            fitted.anomaly_scores(&Matrix::zeros(1, 7)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
        let mut empty = AutoencoderDetector::new(Default::default());
        assert_eq!(
            empty.fit(&Matrix::zeros(0, 4)),
            Err(DetectorError::EmptyInput)
        );
    }
}
