//! k-nearest-neighbour distance novelty detection.
//!
//! The simplest distance-based detector: the anomaly score of a query is
//! the (mean) distance to its `k` nearest training points. Included as
//! an extension baseline beyond the paper's roster — it isolates the
//! "raw distance" signal that LOF normalizes, which makes the LOF
//! comparison in the extended benches interpretable.

use cnd_linalg::{stats, Matrix};

use crate::{DetectorError, NoveltyDetector};

/// How the k nearest distances are aggregated into one score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnAggregation {
    /// Distance to the k-th neighbour (classic kNN score).
    Kth,
    /// Mean of the k nearest distances (smoother).
    Mean,
}

/// kNN-distance novelty detector (exact, brute force).
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{KnnDetector, NoveltyDetector};
///
/// let train = Matrix::from_fn(100, 2, |i, j| ((i * 7 + j * 3) % 10) as f64 * 0.1);
/// let mut det = KnnDetector::new(5, cnd_detectors::KnnAggregation::Mean);
/// det.fit(&train)?;
/// let s = det.anomaly_scores(&Matrix::from_rows(&[vec![0.5, 0.5], vec![9.0, 9.0]])?)?;
/// assert!(s[1] > s[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KnnDetector {
    k: usize,
    aggregation: KnnAggregation,
    train: Option<Matrix>,
}

impl KnnDetector {
    /// Creates an unfitted detector with neighbourhood size `k`.
    pub fn new(k: usize, aggregation: KnnAggregation) -> Self {
        KnnDetector {
            k,
            aggregation,
            train: None,
        }
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl NoveltyDetector for KnnDetector {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        if self.k == 0 || self.k > x.rows() {
            return Err(DetectorError::InvalidParameter {
                name: "k",
                constraint: "must satisfy 1 <= k <= n_samples",
            });
        }
        self.train = Some(x.clone());
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let train = self.train.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != train.cols() {
            return Err(DetectorError::DimensionMismatch {
                fitted: train.cols(),
                given: x.cols(),
            });
        }
        let d = stats::pairwise_sq_distances(x, train)?;
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let mut dists: Vec<f64> = d.row(i).to_vec();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let score = match self.aggregation {
                KnnAggregation::Kth => dists[self.k - 1].sqrt(),
                KnnAggregation::Mean => {
                    dists[..self.k].iter().map(|v| v.sqrt()).sum::<f64>() / self.k as f64
                }
            };
            out.push(score);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Matrix {
        Matrix::from_fn(64, 2, |i, _| (i % 8) as f64)
    }

    #[test]
    fn outliers_score_higher() {
        for agg in [KnnAggregation::Kth, KnnAggregation::Mean] {
            let mut det = KnnDetector::new(4, agg);
            det.fit(&grid()).unwrap();
            let q = Matrix::from_rows(&[vec![3.0, 3.0], vec![40.0, 40.0]]).unwrap();
            let s = det.anomaly_scores(&q).unwrap();
            assert!(s[1] > s[0], "{agg:?}: {s:?}");
        }
    }

    #[test]
    fn training_points_score_near_zero_kth() {
        // With duplicates in the grid, the 4th NN of a training point is
        // another duplicate at distance 0.
        let mut det = KnnDetector::new(4, KnnAggregation::Kth);
        det.fit(&grid()).unwrap();
        let s = det
            .anomaly_scores(&grid().slice_rows(0, 4).unwrap())
            .unwrap();
        assert!(s.iter().all(|&v| v < 1e-9));
    }

    #[test]
    fn error_paths() {
        let det = KnnDetector::new(3, KnnAggregation::Mean);
        assert_eq!(
            det.anomaly_scores(&Matrix::zeros(1, 2)),
            Err(DetectorError::NotFitted)
        );
        let mut bad = KnnDetector::new(0, KnnAggregation::Mean);
        assert!(matches!(
            bad.fit(&grid()),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut fitted = KnnDetector::new(3, KnnAggregation::Mean);
        fitted.fit(&grid()).unwrap();
        assert!(matches!(
            fitted.anomaly_scores(&Matrix::zeros(1, 3)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
        let mut empty = KnnDetector::new(3, KnnAggregation::Mean);
        assert_eq!(
            empty.fit(&Matrix::zeros(0, 2)),
            Err(DetectorError::EmptyInput)
        );
    }

    #[test]
    fn mean_aggregation_smooths() {
        let mut kth = KnnDetector::new(8, KnnAggregation::Kth);
        let mut mean = KnnDetector::new(8, KnnAggregation::Mean);
        kth.fit(&grid()).unwrap();
        mean.fit(&grid()).unwrap();
        let q = Matrix::from_rows(&[vec![3.5, 3.5]]).unwrap();
        let sk = kth.anomaly_scores(&q).unwrap()[0];
        let sm = mean.anomaly_scores(&q).unwrap()[0];
        assert!(sm <= sk + 1e-12, "mean of k nearest <= kth distance");
    }
}
