//! Local Outlier Factor in novelty mode (Breunig et al., SIGMOD 2000).
//!
//! The model memorizes the training set, precomputing each training
//! point's k-distance and local reachability density (lrd). A query point
//! is scored as the ratio of its neighbours' lrd to its own — values well
//! above 1 indicate the point sits in a sparser region than its
//! neighbourhood, i.e. an outlier.

use cnd_linalg::{stats, Matrix};

use crate::{DetectorError, NoveltyDetector};

/// LOF novelty detector with brute-force exact neighbour search.
///
/// Suitable for the few-thousand-sample training sets used in this
/// reproduction; complexity is `O(n²)` at fit time and `O(n·m)` for
/// scoring `m` queries.
#[derive(Debug, Clone)]
pub struct LocalOutlierFactor {
    k: usize,
    train: Option<Matrix>,
    /// k-distance of each training point.
    k_dist: Vec<f64>,
    /// Local reachability density of each training point.
    lrd: Vec<f64>,
    /// Indices of each training point's k nearest neighbours.
    neighbors: Vec<Vec<usize>>,
}

impl LocalOutlierFactor {
    /// Creates an unfitted LOF model with neighbourhood size `k`
    /// (the classical default is 20).
    pub fn new(k: usize) -> Self {
        LocalOutlierFactor {
            k,
            train: None,
            k_dist: Vec::new(),
            lrd: Vec::new(),
            neighbors: Vec::new(),
        }
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the `k` nearest training indices and distances for each
    /// row of `dist` (a query-by-train distance matrix).
    fn knn_from_rows(dist_row: &[f64], k: usize, skip: Option<usize>) -> Vec<(usize, f64)> {
        let mut idx: Vec<(usize, f64)> = dist_row
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != skip)
            .map(|(i, &d)| (i, d.sqrt()))
            .collect();
        idx.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    }
}

impl NoveltyDetector for LocalOutlierFactor {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        if self.k == 0 || self.k >= x.rows() {
            return Err(DetectorError::InvalidParameter {
                name: "k",
                constraint: "must satisfy 1 <= k < n_samples",
            });
        }
        let d = stats::pairwise_sq_distances(x, x)?;
        let n = x.rows();
        let mut k_dist = vec![0.0; n];
        let mut neighbors = Vec::with_capacity(n);
        for (i, slot) in k_dist.iter_mut().enumerate() {
            let nn = Self::knn_from_rows(d.row(i), self.k, Some(i));
            *slot = nn.last().map(|&(_, d)| d).unwrap_or(0.0);
            neighbors.push(nn.iter().map(|&(j, _)| j).collect::<Vec<_>>());
        }
        // Local reachability density per training point.
        let mut lrd = vec![0.0; n];
        for i in 0..n {
            let mut reach_sum = 0.0;
            for &j in &neighbors[i] {
                let dist_ij = d[(i, j)].sqrt();
                reach_sum += dist_ij.max(k_dist[j]);
            }
            let mean_reach = reach_sum / self.k as f64;
            lrd[i] = if mean_reach > 1e-12 {
                1.0 / mean_reach
            } else {
                // Duplicated points: treat density as very high.
                1e12
            };
        }
        self.train = Some(x.clone());
        self.k_dist = k_dist;
        self.lrd = lrd;
        self.neighbors = neighbors;
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let train = self.train.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != train.cols() {
            return Err(DetectorError::DimensionMismatch {
                fitted: train.cols(),
                given: x.cols(),
            });
        }
        let d = stats::pairwise_sq_distances(x, train)?;
        let mut scores = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let nn = Self::knn_from_rows(d.row(i), self.k, None);
            // lrd of the query point.
            let mut reach_sum = 0.0;
            for &(j, dist) in &nn {
                reach_sum += dist.max(self.k_dist[j]);
            }
            let mean_reach = reach_sum / self.k as f64;
            let lrd_q = if mean_reach > 1e-12 {
                1.0 / mean_reach
            } else {
                1e12
            };
            // LOF = mean neighbour lrd / own lrd.
            let neigh_lrd: f64 = nn.iter().map(|&(j, _)| self.lrd[j]).sum::<f64>() / self.k as f64;
            scores.push(neigh_lrd / lrd_q);
        }
        Ok(scores)
    }

    fn name(&self) -> &'static str {
        "LOF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Matrix {
        // 7x7 grid with spacing 1.
        let mut rows = Vec::new();
        for i in 0..7 {
            for j in 0..7 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn inlier_scores_near_one_outlier_large() {
        let x = cluster();
        let mut lof = LocalOutlierFactor::new(5);
        lof.fit(&x).unwrap();
        let queries = Matrix::from_rows(&[
            vec![3.0, 3.0],   // center of the grid
            vec![50.0, 50.0], // far outlier
        ])
        .unwrap();
        let s = lof.anomaly_scores(&queries).unwrap();
        assert!(s[0] < 1.3, "inlier LOF = {}", s[0]);
        assert!(s[1] > 3.0, "outlier LOF = {}", s[1]);
    }

    #[test]
    fn score_monotone_in_distance() {
        let x = cluster();
        let mut lof = LocalOutlierFactor::new(5);
        lof.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![3.0, 8.0], vec![3.0, 20.0], vec![3.0, 60.0]]).unwrap();
        let s = lof.anomaly_scores(&q).unwrap();
        assert!(s[0] < s[1] && s[1] < s[2], "{s:?}");
    }

    #[test]
    fn unfitted_errors() {
        let lof = LocalOutlierFactor::new(3);
        assert_eq!(
            lof.anomaly_scores(&Matrix::zeros(1, 2)),
            Err(DetectorError::NotFitted)
        );
    }

    #[test]
    fn rejects_bad_k() {
        let x = Matrix::zeros(5, 2);
        let mut a = LocalOutlierFactor::new(0);
        assert!(matches!(
            a.fit(&x),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut b = LocalOutlierFactor::new(5);
        assert!(matches!(
            b.fit(&x),
            Err(DetectorError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_dim_mismatch() {
        let mut lof = LocalOutlierFactor::new(2);
        assert_eq!(
            lof.fit(&Matrix::zeros(0, 2)),
            Err(DetectorError::EmptyInput)
        );
        lof.fit(&cluster()).unwrap();
        assert!(matches!(
            lof.anomaly_scores(&Matrix::zeros(1, 3)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn handles_duplicates_without_nan() {
        let mut rows = vec![vec![0.0, 0.0]; 10];
        rows.push(vec![5.0, 5.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut lof = LocalOutlierFactor::new(3);
        lof.fit(&x).unwrap();
        let s = lof.anomaly_scores(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn name() {
        assert_eq!(LocalOutlierFactor::new(5).name(), "LOF");
    }
}
