//! Gaussian / Mahalanobis-distance novelty detection.
//!
//! Models the normal class as a single Gaussian in the principal basis
//! and scores queries by Mahalanobis distance. A classic parametric
//! baseline that complements PCA-FRE: PCA-FRE measures the *off-span*
//! residual, Mahalanobis additionally penalizes unusual positions
//! *within* the span. Included as an extension beyond the paper's
//! roster; the `fig4_extended` bench contrasts the two.

use cnd_linalg::{eigen, stats, Matrix};

use crate::{DetectorError, NoveltyDetector};

/// Gaussian novelty detector scoring by Mahalanobis distance in the
/// eigenbasis of the training covariance.
///
/// Small eigenvalues are floored at `eps` so nearly-degenerate
/// directions produce large (but finite) distances — precisely the
/// directions where anomalies stand out.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_detectors::{MahalanobisDetector, NoveltyDetector};
///
/// // Elongated Gaussian: x spread 10, y spread 0.1.
/// let train = Matrix::from_fn(200, 2, |i, j| {
///     let t = (i as f64 / 200.0 - 0.5) * 2.0;
///     if j == 0 { 10.0 * t } else { 0.1 * (t * 17.0).sin() }
/// });
/// let mut det = MahalanobisDetector::new(1e-6);
/// det.fit(&train)?;
/// // Same Euclidean distance from the mean, very different Mahalanobis.
/// let s = det.anomaly_scores(&Matrix::from_rows(&[
///     vec![5.0, 0.0], // along the long axis: normal
///     vec![0.0, 5.0], // along the short axis: anomalous
/// ])?)?;
/// assert!(s[1] > s[0] * 10.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MahalanobisDetector {
    eps: f64,
    mean: Vec<f64>,
    /// Eigenvectors of the covariance (columns).
    basis: Option<Matrix>,
    /// Eigenvalues floored at `eps`.
    scales: Vec<f64>,
}

impl MahalanobisDetector {
    /// Creates an unfitted detector with eigenvalue floor `eps`.
    pub fn new(eps: f64) -> Self {
        MahalanobisDetector {
            eps,
            mean: Vec::new(),
            basis: None,
            scales: Vec::new(),
        }
    }
}

impl NoveltyDetector for MahalanobisDetector {
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        if self.eps <= 0.0 {
            return Err(DetectorError::InvalidParameter {
                name: "eps",
                constraint: "must be > 0",
            });
        }
        let mean = stats::column_means(x)?;
        let cov = stats::covariance(x)?;
        let eig = eigen::symmetric_eigen(&cov, 1e-7)?;
        self.scales = eig.eigenvalues.iter().map(|&l| l.max(self.eps)).collect();
        self.basis = Some(eig.eigenvectors);
        self.mean = mean;
        Ok(())
    }

    fn anomaly_scores(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let basis = self.basis.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != self.mean.len() {
            return Err(DetectorError::DimensionMismatch {
                fitted: self.mean.len(),
                given: x.cols(),
            });
        }
        let centered = x.sub_row_broadcast(&self.mean)?;
        let projected = centered.matmul(basis)?;
        Ok(projected
            .iter_rows()
            .map(|r| {
                r.iter()
                    .zip(&self.scales)
                    .map(|(&v, &s)| v * v / s)
                    .sum::<f64>()
                    .sqrt()
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "Mahalanobis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elongated() -> Matrix {
        Matrix::from_fn(300, 3, |i, j| {
            let t = (i as f64 / 300.0 - 0.5) * 2.0;
            match j {
                0 => 8.0 * t,
                1 => 0.5 * (t * 13.0).sin(),
                _ => 0.1 * (t * 29.0).cos(),
            }
        })
    }

    #[test]
    fn direction_aware_scoring() {
        let mut det = MahalanobisDetector::new(1e-9);
        det.fit(&elongated()).unwrap();
        let q = Matrix::from_rows(&[vec![4.0, 0.0, 0.0], vec![0.0, 0.0, 4.0]]).unwrap();
        let s = det.anomaly_scores(&q).unwrap();
        assert!(s[1] > s[0] * 5.0, "{s:?}");
    }

    #[test]
    fn mean_scores_zero() {
        let mut det = MahalanobisDetector::new(1e-9);
        let x = elongated();
        det.fit(&x).unwrap();
        let mean = stats::column_means(&x).unwrap();
        let s = det
            .anomaly_scores(&Matrix::from_rows(&[mean]).unwrap())
            .unwrap();
        assert!(s[0] < 1e-6);
    }

    #[test]
    fn error_paths() {
        let det = MahalanobisDetector::new(1e-9);
        assert_eq!(
            det.anomaly_scores(&Matrix::zeros(1, 3)),
            Err(DetectorError::NotFitted)
        );
        let mut bad = MahalanobisDetector::new(0.0);
        assert!(matches!(
            bad.fit(&elongated()),
            Err(DetectorError::InvalidParameter { .. })
        ));
        let mut fitted = MahalanobisDetector::new(1e-9);
        fitted.fit(&elongated()).unwrap();
        assert!(matches!(
            fitted.anomaly_scores(&Matrix::zeros(1, 5)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
        let mut empty = MahalanobisDetector::new(1e-9);
        assert_eq!(
            empty.fit(&Matrix::zeros(0, 3)),
            Err(DetectorError::EmptyInput)
        );
    }

    #[test]
    fn degenerate_directions_are_floored() {
        // Constant third column: covariance eigenvalue 0, floored by eps.
        let x = Matrix::from_fn(50, 3, |i, j| if j == 2 { 1.0 } else { i as f64 });
        let mut det = MahalanobisDetector::new(1e-6);
        det.fit(&x).unwrap();
        let s = det
            .anomaly_scores(&Matrix::from_rows(&[vec![25.0, 25.0, 2.0]]).unwrap())
            .unwrap();
        assert!(s[0].is_finite());
        assert!(
            s[0] > 100.0,
            "off-degenerate-direction point must score high"
        );
    }
}
