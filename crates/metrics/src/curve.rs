//! Threshold-free evaluation curves: PR-AUC and ROC-AUC.
//!
//! The paper reports PR-AUC (Fig. 5) and explicitly prefers it to
//! ROC-AUC under class imbalance (citing Davis & Goadrich, 2006). PR-AUC
//! here is *average precision* — the step-wise integral
//! `AP = Σ (Rₙ − Rₙ₋₁) Pₙ` over descending-score tie groups — which is
//! the standard non-interpolated estimator. ROC-AUC is computed as the
//! Mann–Whitney U statistic with tie correction.

use crate::MetricsError;

fn validate(scores: &[f64], labels: &[u8]) -> Result<(usize, usize), MetricsError> {
    if scores.len() != labels.len() {
        return Err(MetricsError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    let pos = labels.iter().filter(|&&l| l != 0).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return Err(MetricsError::SingleClass);
    }
    Ok((pos, neg))
}

/// Precision-Recall area under the curve (average precision).
///
/// Ties in score are handled as a group: precision is evaluated after
/// absorbing the entire tie level, which makes the result independent of
/// the input order.
///
/// # Errors
///
/// [`MetricsError::LengthMismatch`], [`MetricsError::EmptyInput`], or
/// [`MetricsError::SingleClass`] on malformed input.
///
/// # Example
///
/// ```
/// let ap = cnd_metrics::curve::pr_auc(&[0.9, 0.8, 0.2, 0.1], &[1, 1, 0, 0])?;
/// assert_eq!(ap, 1.0);
/// # Ok::<(), cnd_metrics::MetricsError>(())
/// ```
pub fn pr_auc(scores: &[f64], labels: &[u8]) -> Result<f64, MetricsError> {
    let (total_pos, _) = validate(scores, labels)?;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut prev_recall = 0.0;
    let mut ap = 0.0;
    let mut i = 0;
    while i < order.len() {
        let level = scores[order[i]];
        while i < order.len() && scores[order[i]] == level {
            if labels[order[i]] != 0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let recall = tp as f64 / total_pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
    }
    Ok(ap)
}

/// ROC area under the curve via the rank-sum (Mann–Whitney U) statistic
/// with midrank tie handling: the probability that a random attack
/// scores above a random normal sample.
///
/// # Errors
///
/// Same conditions as [`pr_auc`].
///
/// # Example
///
/// ```
/// let auc = cnd_metrics::curve::roc_auc(&[0.9, 0.8, 0.2, 0.1], &[1, 1, 0, 0])?;
/// assert_eq!(auc, 1.0);
/// # Ok::<(), cnd_metrics::MetricsError>(())
/// ```
pub fn roc_auc(scores: &[f64], labels: &[u8]) -> Result<f64, MetricsError> {
    let (pos, neg) = validate(scores, labels)?;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Midranks.
    let n = scores.len();
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let level = scores[order[i]];
        let start = i;
        while i < n && scores[order[i]] == level {
            i += 1;
        }
        let midrank = (start + i + 1) as f64 / 2.0; // 1-based average rank
        for &idx in &order[start..i] {
            ranks[idx] = midrank;
        }
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l != 0)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0;
    Ok(u / (pos as f64 * neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let s = [0.9, 0.8, 0.7, 0.2, 0.1];
        let l = [1, 1, 1, 0, 0];
        assert_eq!(pr_auc(&s, &l).unwrap(), 1.0);
        assert_eq!(roc_auc(&s, &l).unwrap(), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let s = [0.1, 0.2, 0.9, 0.8];
        let l = [1, 1, 0, 0];
        assert_eq!(roc_auc(&s, &l).unwrap(), 0.0);
        // AP for completely inverted ranking = average of k/(n_neg+k).
        let ap = pr_auc(&s, &l).unwrap();
        assert!((ap - 0.5 * (1.0 / 3.0 + 2.0 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn random_scores_give_base_rate_ap_and_half_auc() {
        // All scores tied: one tie group, precision = base rate.
        let s = [0.5; 10];
        let l = [1, 0, 1, 0, 0, 0, 0, 1, 0, 0];
        let ap = pr_auc(&s, &l).unwrap();
        assert!((ap - 0.3).abs() < 1e-12);
        let auc = roc_auc(&s, &l).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pr_auc_known_mixed_case() {
        // Ranking: 1, 0, 1, 0 (descending score).
        let s = [0.9, 0.8, 0.7, 0.6];
        let l = [1, 0, 1, 0];
        // AP = 1.0 * 0.5 + (2/3) * 0.5 = 0.8333...
        let ap = pr_auc(&s, &l).unwrap();
        assert!((ap - (0.5 + 0.5 * 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_known_mixed_case() {
        let s = [0.9, 0.8, 0.7, 0.6];
        let l = [1, 0, 1, 0];
        // Pairs: (1st pos beats both negs) + (2nd pos beats one neg) = 3 of 4.
        assert!((roc_auc(&s, &l).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn order_independence() {
        let s1 = [0.9, 0.1, 0.8, 0.3, 0.5];
        let l1 = [1, 0, 1, 0, 1];
        let s2 = [0.5, 0.3, 0.1, 0.8, 0.9];
        let l2 = [1, 0, 0, 1, 1];
        assert!((pr_auc(&s1, &l1).unwrap() - pr_auc(&s2, &l2).unwrap()).abs() < 1e-12);
        assert!((roc_auc(&s1, &l1).unwrap() - roc_auc(&s2, &l2).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn single_class_rejected() {
        assert!(matches!(
            pr_auc(&[0.1, 0.2], &[1, 1]),
            Err(MetricsError::SingleClass)
        ));
        assert!(matches!(
            roc_auc(&[0.1, 0.2], &[0, 0]),
            Err(MetricsError::SingleClass)
        ));
    }

    #[test]
    fn malformed_input() {
        assert!(pr_auc(&[0.1], &[0, 1]).is_err());
        assert!(roc_auc(&[], &[]).is_err());
    }

    #[test]
    fn imbalance_shows_prauc_stricter_than_rocauc() {
        // 2 attacks, 98 normals; attacks ranked ~10th and ~20th.
        let mut scores = vec![0.0; 100];
        let mut labels = vec![0u8; 100];
        for (i, s) in scores.iter_mut().enumerate() {
            *s = 1.0 - i as f64 / 100.0;
        }
        labels[9] = 1;
        labels[19] = 1;
        let ap = pr_auc(&scores, &labels).unwrap();
        let auc = roc_auc(&scores, &labels).unwrap();
        // ROC-AUC looks great, PR-AUC exposes the poor precision.
        assert!(auc > 0.85, "auc = {auc}");
        assert!(ap < 0.12, "ap = {ap}");
    }
}
