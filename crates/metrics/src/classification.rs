//! Binary classification metrics (attack = positive class `1`).

use crate::MetricsError;

/// Confusion-matrix counts for a binary problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Attacks predicted as attacks.
    pub true_positives: usize,
    /// Normals predicted as attacks.
    pub false_positives: usize,
    /// Normals predicted as normals.
    pub true_negatives: usize,
    /// Attacks predicted as normals.
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// Tallies predictions against ground truth (`0` normal / `1` attack;
    /// any non-zero value counts as attack).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::LengthMismatch`] on differing lengths and
    /// [`MetricsError::EmptyInput`] when both are empty.
    ///
    /// # Example
    ///
    /// ```
    /// use cnd_metrics::classification::ConfusionCounts;
    /// let c = ConfusionCounts::from_predictions(&[1, 0, 1, 0], &[1, 0, 0, 1])?;
    /// assert_eq!(c.true_positives, 1);
    /// assert_eq!(c.false_positives, 1);
    /// assert_eq!(c.false_negatives, 1);
    /// assert_eq!(c.true_negatives, 1);
    /// # Ok::<(), cnd_metrics::MetricsError>(())
    /// ```
    pub fn from_predictions(pred: &[u8], truth: &[u8]) -> Result<Self, MetricsError> {
        if pred.len() != truth.len() {
            return Err(MetricsError::LengthMismatch {
                scores: pred.len(),
                labels: truth.len(),
            });
        }
        if pred.is_empty() {
            return Err(MetricsError::EmptyInput);
        }
        let mut c = ConfusionCounts::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p != 0, t != 0) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, false) => c.true_negatives += 1,
                (false, true) => c.false_negatives += 1,
            }
        }
        Ok(c)
    }

    /// Precision `TP / (TP + FP)`; `0` when the denominator is zero.
    pub fn precision(&self) -> f64 {
        let d = self.true_positives + self.false_positives;
        if d == 0 {
            0.0
        } else {
            self.true_positives as f64 / d as f64
        }
    }

    /// Recall `TP / (TP + FN)`; `0` when the denominator is zero.
    pub fn recall(&self) -> f64 {
        let d = self.true_positives + self.false_negatives;
        if d == 0 {
            0.0
        } else {
            self.true_positives as f64 / d as f64
        }
    }

    /// F1 score, the harmonic mean of precision and recall; `0` when both
    /// are zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all samples.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    /// Total number of samples tallied.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }
}

/// Convenience: F1 directly from predictions and truth.
///
/// # Errors
///
/// See [`ConfusionCounts::from_predictions`].
pub fn f1_score(pred: &[u8], truth: &[u8]) -> Result<f64, MetricsError> {
    Ok(ConfusionCounts::from_predictions(pred, truth)?.f1())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let c = ConfusionCounts::from_predictions(&[1, 0, 1], &[1, 0, 1]).unwrap();
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn all_wrong() {
        let c = ConfusionCounts::from_predictions(&[0, 1], &[1, 0]).unwrap();
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn known_values() {
        // TP=2, FP=1, FN=1 -> P=2/3, R=2/3, F1=2/3.
        let c = ConfusionCounts::from_predictions(&[1, 1, 1, 0, 0], &[1, 1, 0, 1, 0]).unwrap();
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_positives_predicted() {
        let c = ConfusionCounts::from_predictions(&[0, 0], &[1, 1]).unwrap();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn length_mismatch_and_empty() {
        assert!(matches!(
            ConfusionCounts::from_predictions(&[1], &[1, 0]),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ConfusionCounts::from_predictions(&[], &[]),
            Err(MetricsError::EmptyInput)
        ));
    }

    #[test]
    fn f1_helper_matches() {
        let pred = [1, 0, 1, 1];
        let truth = [1, 0, 0, 1];
        let via_counts = ConfusionCounts::from_predictions(&pred, &truth)
            .unwrap()
            .f1();
        assert_eq!(f1_score(&pred, &truth).unwrap(), via_counts);
    }

    #[test]
    fn total_counts() {
        let c = ConfusionCounts::from_predictions(&[1, 0, 1, 0], &[1, 1, 0, 0]).unwrap();
        assert_eq!(c.total(), 4);
    }
}
