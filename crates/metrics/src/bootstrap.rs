//! Bootstrap confidence intervals for scored metrics.
//!
//! The paper reports point estimates; when comparing methods on scaled
//! replicas the sampling noise matters, so the extended benches attach
//! percentile-bootstrap intervals to F1 and PR-AUC. The resampler is
//! deterministic given a seed, like everything else in the workspace.

use crate::classification::f1_score;
use crate::curve::pr_auc;
use crate::MetricsError;

/// A two-sided percentile confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The metric on the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Nominal coverage (e.g. `0.95`).
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// `true` when `other`'s point estimate falls outside this interval
    /// — a quick significance screen for method comparisons.
    pub fn excludes(&self, other: f64) -> bool {
        other < self.lower || other > self.upper
    }
}

/// Deterministic splitmix64 generator — enough for index resampling
/// without dragging `rand` into this otherwise dependency-free crate.
struct SplitMix(u64);

impl SplitMix {
    fn next_index(&mut self, n: usize) -> usize {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % n as u64) as usize
    }
}

/// Generic percentile bootstrap over paired `(value, label)` samples.
///
/// `metric` receives the resampled pairs and may fail on degenerate
/// resamples (single class); such resamples are skipped, which is the
/// standard practical treatment.
///
/// # Errors
///
/// * Malformed input errors from the first full-sample evaluation.
/// * [`MetricsError::EmptyInput`] when every resample was degenerate.
fn bootstrap<F>(
    values: &[f64],
    labels: &[u8],
    resamples: usize,
    confidence: f64,
    seed: u64,
    metric: F,
) -> Result<ConfidenceInterval, MetricsError>
where
    F: Fn(&[f64], &[u8]) -> Result<f64, MetricsError>,
{
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(MetricsError::BadMatrix {
            reason: "confidence must be in (0, 1)",
        });
    }
    let point = metric(values, labels)?;
    let n = values.len();
    let mut rng = SplitMix(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut stats = Vec::with_capacity(resamples);
    let mut v = vec![0.0; n];
    let mut l = vec![0u8; n];
    for _ in 0..resamples.max(1) {
        for i in 0..n {
            let j = rng.next_index(n);
            v[i] = values[j];
            l[i] = labels[j];
        }
        if let Ok(s) = metric(&v, &l) {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - confidence) / 2.0;
    let idx = |q: f64| -> f64 {
        let pos = q * (stats.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        stats[lo] * (1.0 - frac) + stats[hi] * frac
    };
    Ok(ConfidenceInterval {
        point,
        lower: idx(alpha),
        upper: idx(1.0 - alpha),
        confidence,
    })
}

/// Bootstrap CI for PR-AUC of anomaly scores against binary labels.
///
/// # Errors
///
/// See [`crate::curve::pr_auc`] for input requirements.
///
/// # Example
///
/// ```
/// use cnd_metrics::bootstrap::pr_auc_ci;
/// let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let labels: Vec<u8> = (0..100).map(|i| u8::from(i >= 60)).collect();
/// let ci = pr_auc_ci(&scores, &labels, 200, 0.95, 7)?;
/// assert!(ci.lower <= ci.point && ci.point <= ci.upper);
/// assert!(ci.point > 0.99); // perfectly ranked
/// # Ok::<(), cnd_metrics::MetricsError>(())
/// ```
pub fn pr_auc_ci(
    scores: &[f64],
    labels: &[u8],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<ConfidenceInterval, MetricsError> {
    bootstrap(scores, labels, resamples, confidence, seed, |s, l| {
        pr_auc(s, l)
    })
}

/// Bootstrap CI for the F1 of fixed binary predictions against labels.
///
/// `predictions` are resampled jointly with the labels (case resampling).
///
/// # Errors
///
/// See [`crate::classification::f1_score`] for input requirements.
pub fn f1_ci(
    predictions: &[u8],
    labels: &[u8],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<ConfidenceInterval, MetricsError> {
    let as_f: Vec<f64> = predictions.iter().map(|&p| f64::from(p)).collect();
    bootstrap(&as_f, labels, resamples, confidence, seed, |p, l| {
        let preds: Vec<u8> = p.iter().map(|&v| u8::from(v != 0.0)).collect();
        f1_score(&preds, l)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(n: usize, sep: f64) -> (Vec<f64>, Vec<u8>) {
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let base = if i % 3 == 0 { sep } else { 0.0 };
                base + ((i * 17) % 13) as f64 / 13.0
            })
            .collect();
        let labels: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
        (scores, labels)
    }

    #[test]
    fn interval_brackets_point() {
        let (s, l) = scored(200, 2.0);
        let ci = pr_auc_ci(&s, &l, 300, 0.95, 1).unwrap();
        assert!(ci.lower <= ci.point && ci.point <= ci.upper);
        assert!(ci.upper <= 1.0 + 1e-12);
        assert!(ci.lower >= 0.0);
    }

    #[test]
    fn wider_interval_at_higher_confidence() {
        let (s, l) = scored(150, 1.0);
        let narrow = pr_auc_ci(&s, &l, 400, 0.80, 2).unwrap();
        let wide = pr_auc_ci(&s, &l, 400, 0.99, 2).unwrap();
        assert!(wide.upper - wide.lower >= narrow.upper - narrow.lower);
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        // Use a weakly separated problem so the CI sits in the interior
        // of [0, 1] where the 1/sqrt(n) shrinkage is visible.
        let (s_small, l_small) = scored(60, 0.4);
        let (s_big, l_big) = scored(1200, 0.4);
        let small = pr_auc_ci(&s_small, &l_small, 400, 0.95, 3).unwrap();
        let big = pr_auc_ci(&s_big, &l_big, 400, 0.95, 3).unwrap();
        assert!(
            big.upper - big.lower < small.upper - small.lower,
            "more data must tighten the interval: small [{:.3},{:.3}], big [{:.3},{:.3}]",
            small.lower,
            small.upper,
            big.lower,
            big.upper
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, l) = scored(100, 1.5);
        let a = pr_auc_ci(&s, &l, 100, 0.95, 9).unwrap();
        let b = pr_auc_ci(&s, &l, 100, 0.95, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn f1_ci_perfect_predictions() {
        let labels: Vec<u8> = (0..100).map(|i| u8::from(i % 4 == 0)).collect();
        let ci = f1_ci(&labels.clone(), &labels, 200, 0.95, 4).unwrap();
        assert_eq!(ci.point, 1.0);
        assert_eq!(ci.lower, 1.0);
    }

    #[test]
    fn excludes_screen() {
        let ci = ConfidenceInterval {
            point: 0.8,
            lower: 0.7,
            upper: 0.9,
            confidence: 0.95,
        };
        assert!(ci.excludes(0.65));
        assert!(!ci.excludes(0.85));
    }

    #[test]
    fn validates_confidence() {
        let (s, l) = scored(50, 1.0);
        assert!(pr_auc_ci(&s, &l, 100, 1.0, 0).is_err());
        assert!(pr_auc_ci(&s, &l, 100, 0.0, 0).is_err());
    }
}
