//! # cnd-metrics
//!
//! Evaluation metrics for the CND-IDS reproduction (paper Section IV-A):
//!
//! * [`classification`] — confusion counts, precision, recall, F1.
//! * [`threshold`] — the *Best-F* threshold-selection rule (Su et al.,
//!   KDD 2019): pick the score threshold maximizing F1.
//! * [`curve`] — threshold-free metrics: PR-AUC (average precision) and
//!   ROC-AUC (rank statistic with tie handling). The paper reports
//!   PR-AUC because ROC-AUC is misleading under class imbalance.
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for F1
//!   and PR-AUC (extension; used by the extended benches).
//! * [`continual`] — the continual-learning result matrix `R_ij`
//!   (`i` = training experience, `j` = test experience) and the derived
//!   metrics AVG, FwdTrans and BwdTrans (Díaz-Rodríguez et al., 2018, as
//!   specialized by the paper), plus the improvement multipliers used in
//!   Table II.
//!
//! Labels follow the paper's convention: `0` = normal, `1` = attack;
//! anomaly scores are oriented so that **higher means more anomalous**.
//!
//! # Example
//!
//! ```
//! use cnd_metrics::threshold::best_f1_threshold;
//!
//! let scores = [0.1, 0.2, 0.8, 0.9];
//! let labels = [0, 0, 1, 1];
//! let sel = best_f1_threshold(&scores, &labels)?;
//! assert_eq!(sel.f1, 1.0);
//! # Ok::<(), cnd_metrics::MetricsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod bootstrap;
pub mod classification;
pub mod continual;
pub mod curve;
pub mod threshold;

pub use error::MetricsError;
