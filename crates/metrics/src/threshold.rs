//! Best-F threshold selection (Su et al., KDD 2019 — the paper's [24]).
//!
//! CND-IDS converts anomaly scores into attack/normal decisions with a
//! threshold `τ` chosen to maximize F1 on the evaluation scores. The
//! search sweeps every distinct score level in a single sorted pass, so
//! the returned threshold is exactly optimal for the given data.

use crate::MetricsError;

/// The outcome of a Best-F threshold search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSelection {
    /// The selected threshold `τ`; samples with `score > τ` are
    /// classified as attacks.
    pub threshold: f64,
    /// F1 achieved at the threshold.
    pub f1: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Finds the threshold maximizing F1 over `scores` (higher = more
/// anomalous) against binary `labels` (`1` = attack).
///
/// The returned rule is strict (`score > τ` ⇒ attack), matching the
/// paper's Algorithm 1 line 10.
///
/// # Errors
///
/// * [`MetricsError::LengthMismatch`] / [`MetricsError::EmptyInput`] on
///   malformed input.
/// * [`MetricsError::SingleClass`] when `labels` lacks positives (with no
///   attacks F1 is identically zero and a threshold is meaningless).
///
/// # Example
///
/// ```
/// use cnd_metrics::threshold::best_f1_threshold;
/// let sel = best_f1_threshold(&[0.9, 0.1, 0.8, 0.3], &[1, 0, 1, 0])?;
/// assert_eq!(sel.f1, 1.0);
/// assert!(sel.threshold >= 0.3 && sel.threshold < 0.8);
/// # Ok::<(), cnd_metrics::MetricsError>(())
/// ```
pub fn best_f1_threshold(
    scores: &[f64],
    labels: &[u8],
) -> Result<ThresholdSelection, MetricsError> {
    if scores.len() != labels.len() {
        return Err(MetricsError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    let total_pos = labels.iter().filter(|&&l| l != 0).count();
    if total_pos == 0 {
        return Err(MetricsError::SingleClass);
    }

    // Sort by descending score; sweep thresholds between distinct levels.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut best = ThresholdSelection {
        threshold: f64::INFINITY, // predict nothing as attack
        f1: 0.0,
        precision: 0.0,
        recall: 0.0,
    };
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        // Consume the whole tie group at this score level.
        let level = scores[order[i]];
        while i < order.len() && scores[order[i]] == level {
            if labels[order[i]] != 0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        // Threshold τ just below `level`: everything with score >= level
        // (== score > τ) is predicted attack.
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / total_pos as f64;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        if f1 > best.f1 {
            // τ = midpoint to the next-lower level, or just below the
            // current level at the tail.
            let tau = if i < order.len() {
                0.5 * (level + scores[order[i]])
            } else {
                level - level.abs().max(1.0) * 1e-9 - 1e-12
            };
            best = ThresholdSelection {
                threshold: tau,
                f1,
                precision,
                recall,
            };
        }
    }
    Ok(best)
}

/// Applies a threshold: `score > τ` ⇒ attack (`1`).
pub fn apply_threshold(scores: &[f64], tau: f64) -> Vec<u8> {
    scores.iter().map(|&s| u8::from(s > tau)).collect()
}

/// Label-free threshold selection: the `q`-quantile of the anomaly
/// scores of *known-normal* calibration data (e.g. the clean subset
/// `N_c` re-scored by the deployed model).
///
/// Best-F (the paper's choice) requires labelled evaluation data; in a
/// real deployment no such labels exist. Calibrating `τ` so that a
/// `1 − q` false-positive rate is accepted on clean data is the standard
/// deployable alternative; the `sweep_thresholding` bench quantifies the
/// F1 cost of giving up the Best-F oracle.
///
/// Uses linear interpolation between order statistics.
///
/// # Errors
///
/// * [`MetricsError::EmptyInput`] when `normal_scores` is empty.
/// * [`MetricsError::BadMatrix`] when `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// let tau = cnd_metrics::threshold::quantile_threshold(
///     &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
///     0.95,
/// )?;
/// assert!(tau > 9.0 && tau <= 10.0);
/// # Ok::<(), cnd_metrics::MetricsError>(())
/// ```
pub fn quantile_threshold(normal_scores: &[f64], q: f64) -> Result<f64, MetricsError> {
    if normal_scores.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MetricsError::BadMatrix {
            reason: "quantile must be in [0, 1]",
        });
    }
    let mut sorted = normal_scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::f1_score;

    #[test]
    fn perfectly_separable() {
        let scores = [0.1, 0.2, 0.7, 0.9];
        let labels = [0, 0, 1, 1];
        let sel = best_f1_threshold(&scores, &labels).unwrap();
        assert_eq!(sel.f1, 1.0);
        let pred = apply_threshold(&scores, sel.threshold);
        assert_eq!(pred, vec![0, 0, 1, 1]);
    }

    #[test]
    fn threshold_is_consistent_with_reported_f1() {
        let scores = [0.3, 0.5, 0.5, 0.2, 0.8, 0.9, 0.1, 0.6];
        let labels = [0, 1, 0, 0, 1, 1, 0, 0];
        let sel = best_f1_threshold(&scores, &labels).unwrap();
        let pred = apply_threshold(&scores, sel.threshold);
        let f1 = f1_score(&pred, &labels).unwrap();
        assert!((f1 - sel.f1).abs() < 1e-12, "reported {} got {f1}", sel.f1);
    }

    #[test]
    fn exhaustive_optimality_small_case() {
        let scores = [0.1, 0.4, 0.35, 0.8, 0.65, 0.2];
        let labels = [0, 1, 0, 1, 1, 0];
        let sel = best_f1_threshold(&scores, &labels).unwrap();
        // Brute force over many candidate thresholds.
        let mut best = 0.0f64;
        let mut t = -0.05;
        while t < 1.0 {
            let pred = apply_threshold(&scores, t);
            if let Ok(f1) = f1_score(&pred, &labels) {
                best = best.max(f1);
            }
            t += 0.001;
        }
        assert!(
            (sel.f1 - best).abs() < 1e-9,
            "sweep found {best}, selector {}",
            sel.f1
        );
    }

    #[test]
    fn handles_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [1, 1, 0, 0];
        let sel = best_f1_threshold(&scores, &labels).unwrap();
        // Either all-attack (F1 = 2/3) or none (F1 = 0); best is 2/3.
        assert!((sel.f1 - 2.0 / 3.0).abs() < 1e-12);
        let pred = apply_threshold(&scores, sel.threshold);
        assert_eq!(pred, vec![1, 1, 1, 1]);
    }

    #[test]
    fn all_positive_labels() {
        let scores = [0.2, 0.9];
        let sel = best_f1_threshold(&scores, &[1, 1]).unwrap();
        assert_eq!(sel.f1, 1.0);
        assert_eq!(apply_threshold(&scores, sel.threshold), vec![1, 1]);
    }

    #[test]
    fn no_positives_is_error() {
        assert!(matches!(
            best_f1_threshold(&[0.1, 0.2], &[0, 0]),
            Err(MetricsError::SingleClass)
        ));
    }

    #[test]
    fn malformed_inputs() {
        assert!(matches!(
            best_f1_threshold(&[0.1], &[0, 1]),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            best_f1_threshold(&[], &[]),
            Err(MetricsError::EmptyInput)
        ));
    }

    #[test]
    fn quantile_threshold_interpolates() {
        let scores: Vec<f64> = (1..=10).map(f64::from).collect();
        let t50 = quantile_threshold(&scores, 0.5).unwrap();
        assert!((t50 - 5.5).abs() < 1e-12);
        let t0 = quantile_threshold(&scores, 0.0).unwrap();
        assert_eq!(t0, 1.0);
        let t1 = quantile_threshold(&scores, 1.0).unwrap();
        assert_eq!(t1, 10.0);
    }

    #[test]
    fn quantile_threshold_controls_fpr() {
        // Applying the 0.9-quantile threshold to the calibration data
        // itself flags ~10% of it.
        let scores: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.37).sin() + i as f64 * 0.01)
            .collect();
        let tau = quantile_threshold(&scores, 0.9).unwrap();
        let flagged = apply_threshold(&scores, tau)
            .iter()
            .map(|&v| v as usize)
            .sum::<usize>();
        let fpr = flagged as f64 / scores.len() as f64;
        assert!((fpr - 0.1).abs() < 0.02, "fpr = {fpr}");
    }

    #[test]
    fn quantile_threshold_validates() {
        assert!(matches!(
            quantile_threshold(&[], 0.9),
            Err(MetricsError::EmptyInput)
        ));
        assert!(quantile_threshold(&[1.0], 1.5).is_err());
        assert!(quantile_threshold(&[1.0], -0.1).is_err());
    }

    #[test]
    fn inverted_scores_still_find_best_available() {
        // Scores anti-correlated with labels: best F1 comes from a very
        // low threshold that predicts everything as attack.
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0, 0, 1, 1];
        let sel = best_f1_threshold(&scores, &labels).unwrap();
        let pred = apply_threshold(&scores, sel.threshold);
        assert_eq!(pred, vec![1, 1, 1, 1]);
        assert!((sel.f1 - 2.0 / 3.0).abs() < 1e-12);
    }
}
