use std::error::Error;
use std::fmt;

/// Error type for metric computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricsError {
    /// Scores and labels have different lengths.
    LengthMismatch {
        /// Number of scores.
        scores: usize,
        /// Number of labels.
        labels: usize,
    },
    /// The input was empty.
    EmptyInput,
    /// The labels contain only one class where both are required.
    SingleClass,
    /// A result matrix was not square or had fewer than 2 experiences.
    BadMatrix {
        /// Human-readable description.
        reason: &'static str,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::LengthMismatch { scores, labels } => {
                write!(f, "{scores} scores but {labels} labels")
            }
            MetricsError::EmptyInput => write!(f, "metric requires non-empty input"),
            MetricsError::SingleClass => {
                write!(f, "metric requires both positive and negative labels")
            }
            MetricsError::BadMatrix { reason } => write!(f, "bad result matrix: {reason}"),
        }
    }
}

impl Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(MetricsError::EmptyInput.to_string().contains("non-empty"));
        assert!(MetricsError::LengthMismatch {
            scores: 3,
            labels: 2
        }
        .to_string()
        .contains("3 scores"));
    }
}
