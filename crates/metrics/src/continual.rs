//! Continual-learning metrics over the result matrix `R_ij`.
//!
//! After training on experience `i`, a continual learner is evaluated on
//! the test split of every experience `j`, producing an `m × m` matrix of
//! F1 scores. The paper (Section IV-A) derives three summary metrics:
//!
//! * `AVG = Σ_{i=j} R_ij / m` — performance on the *current* experience
//!   (seen attacks).
//! * `FwdTrans = Σ_{j>i} R_ij / (m(m−1)/2)` — performance on *future*
//!   experiences (zero-day attacks).
//! * `BwdTrans = Σ_i (R_{m,i} − R_{i,i}) / (m(m−1)/2)` — change on *past*
//!   experiences after finishing training; negative values indicate
//!   catastrophic forgetting.
//!
//! The divisor of `BwdTrans` follows the paper's formula verbatim (it
//! differs from the more common `1/(m−1)` normalization of
//! Díaz-Rodríguez et al. by a factor of `2/m`).

use crate::MetricsError;

/// An `m × m` continual-learning result matrix.
///
/// Entry `(i, j)` is the metric (F1 in the paper) measured on test
/// experience `j` after training through experience `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultMatrix {
    m: usize,
    values: Vec<f64>,
}

impl ResultMatrix {
    /// Creates a zero-initialized `m × m` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::BadMatrix`] for `m < 2` (the CL metrics
    /// are undefined for fewer than two experiences).
    pub fn new(m: usize) -> Result<Self, MetricsError> {
        if m < 2 {
            return Err(MetricsError::BadMatrix {
                reason: "need at least 2 experiences",
            });
        }
        Ok(ResultMatrix {
            m,
            values: vec![0.0; m * m],
        })
    }

    /// Builds a matrix from rows (training experience major).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::BadMatrix`] if the rows do not form a
    /// square matrix with `m >= 2`.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MetricsError> {
        let m = rows.len();
        if m < 2 || rows.iter().any(|r| r.len() != m) {
            return Err(MetricsError::BadMatrix {
                reason: "rows must form a square matrix with m >= 2",
            });
        }
        let mut values = Vec::with_capacity(m * m);
        for r in rows {
            values.extend_from_slice(r);
        }
        Ok(ResultMatrix { m, values })
    }

    /// Number of experiences.
    pub fn experiences(&self) -> usize {
        self.m
    }

    /// Gets entry `(train_exp, test_exp)`.
    ///
    /// # Panics
    ///
    /// Panics when either index is `>= experiences()`.
    pub fn get(&self, train_exp: usize, test_exp: usize) -> f64 {
        assert!(
            train_exp < self.m && test_exp < self.m,
            "index out of bounds"
        );
        self.values[train_exp * self.m + test_exp]
    }

    /// Sets entry `(train_exp, test_exp)`.
    ///
    /// # Panics
    ///
    /// Panics when either index is `>= experiences()`.
    pub fn set(&mut self, train_exp: usize, test_exp: usize, value: f64) {
        assert!(
            train_exp < self.m && test_exp < self.m,
            "index out of bounds"
        );
        self.values[train_exp * self.m + test_exp] = value;
    }

    /// `AVG`: mean of the diagonal — performance on the experience just
    /// trained on (seen attacks).
    pub fn avg(&self) -> f64 {
        (0..self.m).map(|i| self.get(i, i)).sum::<f64>() / self.m as f64
    }

    /// `FwdTrans`: mean over the strict upper triangle — performance on
    /// experiences not yet trained on (zero-day attacks).
    pub fn fwd_trans(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.m {
            for j in (i + 1)..self.m {
                s += self.get(i, j);
            }
        }
        s / (self.m * (self.m - 1) / 2) as f64
    }

    /// `BwdTrans`: paper formula `Σ_i (R_{m,i} − R_{i,i}) / (m(m−1)/2)`.
    /// Positive values mean past experiences *improved* after later
    /// training; negative values indicate forgetting.
    pub fn bwd_trans(&self) -> f64 {
        let last = self.m - 1;
        let s: f64 = (0..self.m)
            .map(|i| self.get(last, i) - self.get(i, i))
            .sum();
        s / (self.m * (self.m - 1) / 2) as f64
    }

    /// All three summary metrics at once.
    pub fn summary(&self) -> ContinualSummary {
        ContinualSummary {
            avg: self.avg(),
            fwd_trans: self.fwd_trans(),
            bwd_trans: self.bwd_trans(),
        }
    }

    /// Row `train_exp` of the matrix (the F1 scores on every test
    /// experience after training through `train_exp`).
    ///
    /// # Panics
    ///
    /// Panics when `train_exp >= experiences()`.
    pub fn row(&self, train_exp: usize) -> &[f64] {
        assert!(train_exp < self.m, "index out of bounds");
        &self.values[train_exp * self.m..(train_exp + 1) * self.m]
    }

    /// The summary metrics restricted to the first `through + 1`
    /// training experiences — what the quality timeline reports while
    /// the run is still in flight:
    ///
    /// * `avg` — diagonal mean over rows `0..=through`;
    /// * `fwd_trans` — mean of `R_kj` for `k <= through`, `j > k`
    ///   (every future experience, including ones not yet trained on);
    /// * `bwd_trans` — `Σ_{j<i} (R_ij − R_jj) / (i(i+1)/2)` with
    ///   `i = through` (0.0 at the first step, where no past exists).
    ///
    /// At `through == experiences() - 1` each component equals the full
    /// [`ResultMatrix::summary`] (the paper's `j = m−1` backward term
    /// is identically zero).
    ///
    /// # Panics
    ///
    /// Panics when `through >= experiences()`.
    pub fn partial_summary(&self, through: usize) -> ContinualSummary {
        assert!(through < self.m, "index out of bounds");
        let i = through;
        let avg = (0..=i).map(|k| self.get(k, k)).sum::<f64>() / (i + 1) as f64;
        let mut fwd = 0.0;
        let mut fwd_n = 0usize;
        for k in 0..=i {
            for j in (k + 1)..self.m {
                fwd += self.get(k, j);
                fwd_n += 1;
            }
        }
        let fwd_trans = if fwd_n == 0 { 0.0 } else { fwd / fwd_n as f64 };
        let bwd_trans = if i == 0 {
            0.0
        } else {
            let s: f64 = (0..i).map(|j| self.get(i, j) - self.get(j, j)).sum();
            s / ((i + 1) * i / 2) as f64
        };
        ContinualSummary {
            avg,
            fwd_trans,
            bwd_trans,
        }
    }
}

/// The three continual-learning summary metrics of the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinualSummary {
    /// Diagonal mean (seen attacks).
    pub avg: f64,
    /// Upper-triangle mean (zero-day attacks).
    pub fwd_trans: f64,
    /// Backward transfer (forgetting when negative).
    pub bwd_trans: f64,
}

/// Improvement multiplier used in Table II: `ours / baseline`.
///
/// Returns `None` when the baseline is non-positive (a proportional
/// increase is meaningless — the reason the paper excludes BwdTrans from
/// Table II).
pub fn improvement_ratio(ours: f64, baseline: f64) -> Option<f64> {
    if baseline > 0.0 {
        Some(ours / baseline)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3x3 example used throughout:
    /// rows = after training exp i, cols = test exp j.
    fn example() -> ResultMatrix {
        ResultMatrix::from_rows(&[
            vec![0.9, 0.5, 0.4],
            vec![0.8, 0.7, 0.5],
            vec![0.7, 0.6, 0.8],
        ])
        .unwrap()
    }

    #[test]
    fn avg_is_diagonal_mean() {
        let r = example();
        assert!((r.avg() - (0.9 + 0.7 + 0.8) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fwd_trans_upper_triangle() {
        let r = example();
        // (0.5 + 0.4 + 0.5) / 3
        assert!((r.fwd_trans() - 1.4 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bwd_trans_paper_formula() {
        let r = example();
        // Σ_i (R_{2,i} − R_{i,i}) = (0.7−0.9) + (0.6−0.7) + (0.8−0.8) = −0.3
        // divisor m(m−1)/2 = 3.
        assert!((r.bwd_trans() - (-0.3 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn no_forgetting_gives_zero_bwd() {
        let r = ResultMatrix::from_rows(&[vec![0.8, 0.1], vec![0.8, 0.9]]).unwrap();
        assert!((r.bwd_trans() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn positive_bwd_when_past_improves() {
        let r = ResultMatrix::from_rows(&[vec![0.5, 0.1], vec![0.9, 0.9]]).unwrap();
        assert!(r.bwd_trans() > 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = ResultMatrix::new(4).unwrap();
        r.set(2, 3, 0.42);
        assert_eq!(r.get(2, 3), 0.42);
        assert_eq!(r.get(3, 2), 0.0);
        assert_eq!(r.experiences(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        example().get(3, 0);
    }

    #[test]
    fn constructors_validate() {
        assert!(matches!(
            ResultMatrix::new(1),
            Err(MetricsError::BadMatrix { .. })
        ));
        assert!(matches!(
            ResultMatrix::from_rows(&[vec![1.0], vec![1.0]]),
            Err(MetricsError::BadMatrix { .. })
        ));
    }

    #[test]
    fn summary_bundles_metrics() {
        let r = example();
        let s = r.summary();
        assert_eq!(s.avg, r.avg());
        assert_eq!(s.fwd_trans, r.fwd_trans());
        assert_eq!(s.bwd_trans, r.bwd_trans());
    }

    #[test]
    fn row_returns_train_experience_slice() {
        let r = example();
        assert_eq!(r.row(1), &[0.8, 0.7, 0.5]);
        assert_eq!(r.row(0).len(), 3);
    }

    #[test]
    fn partial_summary_matches_full_summary_at_last_step() {
        let r = example();
        let partial = r.partial_summary(2);
        let full = r.summary();
        assert!((partial.avg - full.avg).abs() < 1e-12);
        assert!((partial.fwd_trans - full.fwd_trans).abs() < 1e-12);
        assert!((partial.bwd_trans - full.bwd_trans).abs() < 1e-12);
    }

    #[test]
    fn partial_summary_first_step() {
        let r = example();
        let s = r.partial_summary(0);
        assert!((s.avg - 0.9).abs() < 1e-12);
        // Row 0's future entries: (0.5 + 0.4) / 2.
        assert!((s.fwd_trans - 0.45).abs() < 1e-12);
        assert_eq!(s.bwd_trans, 0.0);
    }

    #[test]
    fn partial_summary_mid_run() {
        let r = example();
        let s = r.partial_summary(1);
        assert!((s.avg - (0.9 + 0.7) / 2.0).abs() < 1e-12);
        // Pairs k<=1, j>k: (0,1) (0,2) (1,2) -> (0.5 + 0.4 + 0.5) / 3.
        assert!((s.fwd_trans - 1.4 / 3.0).abs() < 1e-12);
        // i=1: (R_10 - R_00) / 1 = 0.8 - 0.9.
        assert!((s.bwd_trans - (-0.1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn partial_summary_out_of_bounds_panics() {
        let _ = example().partial_summary(3);
    }

    #[test]
    fn improvement_ratio_handles_nonpositive() {
        assert_eq!(improvement_ratio(0.8, 0.4), Some(2.0));
        assert_eq!(improvement_ratio(0.8, 0.0), None);
        assert_eq!(improvement_ratio(0.8, -0.1), None);
    }
}
