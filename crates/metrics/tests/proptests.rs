//! Property-based tests for the metric implementations.

use cnd_metrics::classification::{f1_score, ConfusionCounts};
use cnd_metrics::continual::ResultMatrix;
use cnd_metrics::curve::{pr_auc, roc_auc};
use cnd_metrics::threshold::{apply_threshold, best_f1_threshold};
use proptest::prelude::*;

fn scored_labels() -> impl Strategy<Value = (Vec<f64>, Vec<u8>)> {
    prop::collection::vec((0.0..1.0f64, 0u8..2), 4..60).prop_map(|pairs| {
        let (s, l): (Vec<f64>, Vec<u8>) = pairs.into_iter().unzip();
        (s, l)
    })
}

fn both_classes(labels: &[u8]) -> bool {
    labels.contains(&0) && labels.iter().any(|&l| l != 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn f1_bounded((_s, l) in scored_labels(), (_s2, p) in scored_labels()) {
        let n = l.len().min(p.len());
        if n > 0 {
            let f1 = f1_score(&p[..n], &l[..n]).unwrap();
            prop_assert!((0.0..=1.0).contains(&f1));
        }
    }

    #[test]
    fn best_f_threshold_achieves_reported_f1((s, l) in scored_labels()) {
        if l.iter().any(|&x| x != 0) {
            let sel = best_f1_threshold(&s, &l).unwrap();
            let pred = apply_threshold(&s, sel.threshold);
            let f1 = f1_score(&pred, &l).unwrap();
            prop_assert!((f1 - sel.f1).abs() < 1e-9, "reported {} actual {}", sel.f1, f1);
        }
    }

    #[test]
    fn best_f_dominates_uniform_grid((s, l) in scored_labels()) {
        if l.iter().any(|&x| x != 0) {
            let sel = best_f1_threshold(&s, &l).unwrap();
            for i in 0..=20 {
                let t = i as f64 / 20.0;
                let pred = apply_threshold(&s, t);
                let f1 = f1_score(&pred, &l).unwrap();
                prop_assert!(sel.f1 >= f1 - 1e-9, "t={t} gives {f1} > best {}", sel.f1);
            }
        }
    }

    #[test]
    fn aucs_bounded((s, l) in scored_labels()) {
        if both_classes(&l) {
            let ap = pr_auc(&s, &l).unwrap();
            let auc = roc_auc(&s, &l).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&auc));
        }
    }

    #[test]
    fn roc_auc_complement_under_score_negation((s, l) in scored_labels()) {
        if both_classes(&l) {
            let auc = roc_auc(&s, &l).unwrap();
            let neg: Vec<f64> = s.iter().map(|v| -v).collect();
            let auc_neg = roc_auc(&neg, &l).unwrap();
            prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pr_auc_at_least_base_rate_for_perfect_ranking(n_pos in 1usize..10, n_neg in 1usize..30) {
        // Perfect ranking always yields AP = 1.
        let mut s = Vec::new();
        let mut l = Vec::new();
        for i in 0..n_pos { s.push(10.0 + i as f64); l.push(1u8); }
        for i in 0..n_neg { s.push(-(i as f64)); l.push(0u8); }
        prop_assert!((pr_auc(&s, &l).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts_partition(
        (_s, truth) in scored_labels(),
        (_s2, pred) in scored_labels(),
    ) {
        let n = truth.len().min(pred.len());
        if n > 0 {
            let c = ConfusionCounts::from_predictions(&pred[..n], &truth[..n]).unwrap();
            prop_assert_eq!(c.total(), n);
        }
    }

    #[test]
    fn result_matrix_metrics_bounded(vals in prop::collection::vec(0.0..1.0f64, 9..=9)) {
        let rows: Vec<Vec<f64>> = vals.chunks(3).map(|c| c.to_vec()).collect();
        let r = ResultMatrix::from_rows(&rows).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.avg()));
        prop_assert!((0.0..=1.0).contains(&r.fwd_trans()));
        prop_assert!((-1.0..=1.0).contains(&r.bwd_trans()));
    }
}
