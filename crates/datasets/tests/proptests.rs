//! Property-based tests for dataset generation and continual splitting.

use cnd_datasets::{continual, DatasetProfile, GeneratorConfig};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = DatasetProfile> {
    prop::sample::select(DatasetProfile::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generation_is_finite_and_complete(profile in profile_strategy(), seed in 0u64..1000) {
        let data = profile.generate(&GeneratorConfig::small(seed)).unwrap();
        prop_assert!(data.x.is_finite());
        prop_assert_eq!(data.n_features(), profile.n_features());
        prop_assert_eq!(data.n_attack_classes(), profile.n_attack_classes());
        prop_assert_eq!(data.class.len(), data.len());
        // Every class id is valid.
        prop_assert!(data.class.iter().all(|&c| c <= profile.n_attack_classes()));
    }

    #[test]
    fn imbalance_tracks_profile(profile in profile_strategy(), seed in 0u64..100) {
        let data = profile.generate(&GeneratorConfig::small(seed)).unwrap();
        let frac = data.attack_count() as f64 / data.len() as f64;
        prop_assert!((frac - profile.attack_fraction()).abs() < 0.08,
            "{profile}: attack fraction {frac} vs table {}", profile.attack_fraction());
    }

    #[test]
    fn split_partitions_attack_classes(seed in 0u64..50) {
        let profile = DatasetProfile::UnswNb15;
        let data = profile.generate(&GeneratorConfig::small(seed)).unwrap();
        let split = continual::prepare(&data, 5, 0.7, seed).unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in &split.experiences {
            for &c in &e.attack_classes {
                prop_assert!(seen.insert(c), "class {c} in two experiences");
            }
        }
        prop_assert_eq!(seen.len(), 10);
    }

    #[test]
    fn split_train_sets_have_no_label_leakage(seed in 0u64..50) {
        // Train classes exist only as withheld ground truth; every test
        // label is consistent with its class id.
        let profile = DatasetProfile::WustlIiot;
        let data = profile.generate(&GeneratorConfig::small(seed)).unwrap();
        let split = continual::prepare(&data, 4, 0.7, seed).unwrap();
        for e in &split.experiences {
            prop_assert_eq!(e.train_x.rows(), e.train_class.len());
            for (y, c) in e.test_y.iter().zip(&e.test_class) {
                prop_assert_eq!(*y != 0, *c != 0);
            }
        }
    }

    #[test]
    fn split_sample_conservation(seed in 0u64..50) {
        // N_c plus all experience train/test parts account for every
        // sample exactly once.
        let profile = DatasetProfile::UnswNb15;
        let data = profile.generate(&GeneratorConfig::small(seed)).unwrap();
        let split = continual::prepare(&data, 5, 0.7, seed).unwrap();
        let total: usize = split.clean_normal.rows()
            + split
                .experiences
                .iter()
                .map(|e| e.train_x.rows() + e.test_x.rows())
                .sum::<usize>();
        prop_assert_eq!(total, data.len());
    }

    #[test]
    fn duplicates_present_at_configured_rate(seed in 0u64..20) {
        let cfg = GeneratorConfig {
            duplicate_probability: 0.3,
            ..GeneratorConfig::small(seed)
        };
        let data = DatasetProfile::WustlIiot.generate(&cfg).unwrap();
        // Count exact consecutive-window duplicates among normals.
        let normals: Vec<usize> = data.normal_indices().collect();
        let mut dups = 0;
        for w in normals.windows(51) {
            let last = w[w.len() - 1];
            if w[..w.len() - 1]
                .iter()
                .any(|&i| data.x.row(i) == data.x.row(last))
            {
                dups += 1;
            }
        }
        let rate = dups as f64 / normals.len() as f64;
        prop_assert!(rate > 0.15, "duplicate rate {rate} too low");
    }

    #[test]
    fn zero_duplicate_probability_gives_unique_rows(seed in 0u64..10) {
        let cfg = GeneratorConfig {
            duplicate_probability: 0.0,
            ..GeneratorConfig::small(seed)
        };
        let data = DatasetProfile::UnswNb15.generate(&cfg).unwrap();
        let normals: Vec<usize> = data.normal_indices().collect();
        for w in normals.windows(2) {
            prop_assert_ne!(data.x.row(w[0]), data.x.row(w[1]));
        }
    }
}
