use cnd_linalg::Matrix;

/// A labelled intrusion dataset: one flow per row.
///
/// `class` identifies the traffic type per row: `0` is benign/normal,
/// `1..=n_attack_classes` are attack classes. The binary label used by
/// the detectors is derived as `class != 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, one flow per row.
    pub x: Matrix,
    /// Traffic class per row: `0` = normal, `c >= 1` = attack class `c`.
    pub class: Vec<usize>,
    /// Human-readable class names; index 0 is `"normal"`.
    pub class_names: Vec<String>,
    /// Name of the source profile or file.
    pub name: String,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of distinct attack classes present in `class_names`
    /// (excluding normal).
    pub fn n_attack_classes(&self) -> usize {
        self.class_names.len().saturating_sub(1)
    }

    /// Binary labels: `0` normal, `1` attack. Lazily derived — collect
    /// only when a materialized `Vec` is genuinely needed.
    pub fn binary_labels(&self) -> impl Iterator<Item = u8> + '_ {
        self.class.iter().map(|&c| u8::from(c != 0))
    }

    /// Row indices of normal samples, in stream order.
    pub fn normal_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.class_indices(0)
    }

    /// Row indices of samples belonging to class `c` (0 = normal).
    pub fn class_indices(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.class
            .iter()
            .enumerate()
            .filter(move |(_, &cls)| cls == c)
            .map(|(i, _)| i)
    }

    /// Count of normal samples.
    pub fn normal_count(&self) -> usize {
        self.class.iter().filter(|&&c| c == 0).count()
    }

    /// Count of attack samples.
    pub fn attack_count(&self) -> usize {
        self.len() - self.normal_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            x: Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f64),
            class: vec![0, 1, 0, 2, 1],
            class_names: vec!["normal".into(), "dos".into(), "scan".into()],
            name: "tiny".into(),
        }
    }

    #[test]
    fn counts() {
        let d = tiny();
        assert_eq!(d.len(), 5);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_attack_classes(), 2);
        assert_eq!(d.normal_count(), 2);
        assert_eq!(d.attack_count(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn labels_and_indices() {
        let d = tiny();
        assert_eq!(d.binary_labels().collect::<Vec<_>>(), vec![0, 1, 0, 1, 1]);
        assert_eq!(d.normal_indices().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(d.class_indices(1).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(d.class_indices(2).collect::<Vec<_>>(), vec![3]);
    }
}
