//! The four dataset profiles of the paper's Table I.
//!
//! Each profile records the structure of one real intrusion dataset —
//! feature dimensionality, attack-class count, class-imbalance ratio and
//! the experience count used in the paper's split — and knows how to
//! instantiate a scaled synthetic replica via [`crate::generator`].

use crate::generator::{self, GeneratorConfig};
use crate::{Dataset, DatasetError};

/// One of the paper's four intrusion datasets (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// X-IIoTID (Al-Hawawreh et al.): industrial IoT, 18 attack types,
    /// near-balanced (421k normal / 399k attack).
    XIiotId,
    /// WUSTL-IIoT 2021: industrial IoT, 4 attack types, heavily
    /// imbalanced (1.1M normal / 87k attack).
    WustlIiot,
    /// CICIDS2017: enterprise network, 15 attack types,
    /// 2.27M normal / 558k attack.
    Cicids2017,
    /// UNSW-NB15: enterprise network, 10 attack types (9 attack
    /// categories + variants in the paper's counting),
    /// 165k normal / 93k attack.
    UnswNb15,
}

impl DatasetProfile {
    /// All four profiles in the paper's Table I order.
    pub const ALL: [DatasetProfile; 4] = [
        DatasetProfile::XIiotId,
        DatasetProfile::WustlIiot,
        DatasetProfile::Cicids2017,
        DatasetProfile::UnswNb15,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::XIiotId => "X-IIoTID",
            DatasetProfile::WustlIiot => "WUSTL-IIoT",
            DatasetProfile::Cicids2017 => "CICIDS2017",
            DatasetProfile::UnswNb15 => "UNSW-NB15",
        }
    }

    /// Feature dimensionality of the synthetic replica (close to the
    /// numeric-feature count of the real dataset).
    pub fn n_features(self) -> usize {
        match self {
            DatasetProfile::XIiotId => 58,
            DatasetProfile::WustlIiot => 41,
            DatasetProfile::Cicids2017 => 78,
            DatasetProfile::UnswNb15 => 42,
        }
    }

    /// Number of attack classes (paper Table I "Attack Types").
    pub fn n_attack_classes(self) -> usize {
        match self {
            DatasetProfile::XIiotId => 18,
            DatasetProfile::WustlIiot => 4,
            DatasetProfile::Cicids2017 => 15,
            DatasetProfile::UnswNb15 => 10,
        }
    }

    /// Attack fraction of the full dataset (from the paper's Table I
    /// sample counts).
    pub fn attack_fraction(self) -> f64 {
        match self {
            DatasetProfile::XIiotId => 399_417.0 / 820_502.0,
            DatasetProfile::WustlIiot => 87_016.0 / 1_194_464.0,
            DatasetProfile::Cicids2017 => 557_646.0 / 2_830_743.0,
            DatasetProfile::UnswNb15 => 93_000.0 / 257_673.0,
        }
    }

    /// Full-size sample count reported in the paper's Table I.
    pub fn paper_size(self) -> usize {
        match self {
            DatasetProfile::XIiotId => 820_502,
            DatasetProfile::WustlIiot => 1_194_464,
            DatasetProfile::Cicids2017 => 2_830_743,
            DatasetProfile::UnswNb15 => 257_673,
        }
    }

    /// Number of experiences used by the paper's split (Section IV-A):
    /// 5 for all datasets except WUSTL-IIoT (4, one attack each).
    pub fn default_experiences(self) -> usize {
        match self {
            DatasetProfile::WustlIiot => 4,
            _ => 5,
        }
    }

    /// Latent manifold rank of the benign traffic model — a fraction of
    /// the feature count, reflecting the strong correlations among real
    /// flow features.
    pub fn latent_rank(self) -> usize {
        (self.n_features() / 5).max(3)
    }

    /// Generates the scaled synthetic replica.
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration.
    pub fn generate(self, config: &GeneratorConfig) -> Result<Dataset, DatasetError> {
        generator::generate(self, config)
    }
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_structure() {
        assert_eq!(DatasetProfile::XIiotId.n_attack_classes(), 18);
        assert_eq!(DatasetProfile::WustlIiot.n_attack_classes(), 4);
        assert_eq!(DatasetProfile::Cicids2017.n_attack_classes(), 15);
        assert_eq!(DatasetProfile::UnswNb15.n_attack_classes(), 10);
    }

    #[test]
    fn attack_fractions_match_table_one() {
        // X-IIoTID is near balanced, WUSTL heavily imbalanced.
        assert!((DatasetProfile::XIiotId.attack_fraction() - 0.487).abs() < 0.01);
        assert!((DatasetProfile::WustlIiot.attack_fraction() - 0.0729).abs() < 0.001);
    }

    #[test]
    fn experience_counts() {
        assert_eq!(DatasetProfile::WustlIiot.default_experiences(), 4);
        assert_eq!(DatasetProfile::Cicids2017.default_experiences(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetProfile::UnswNb15.to_string(), "UNSW-NB15");
        assert_eq!(DatasetProfile::ALL.len(), 4);
    }

    #[test]
    fn latent_rank_reasonable() {
        for p in DatasetProfile::ALL {
            let r = p.latent_rank();
            assert!(r >= 3 && r < p.n_features());
        }
    }
}
