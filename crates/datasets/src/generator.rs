//! Seeded synthetic flow-feature generator.
//!
//! The generative model (one instance per [`DatasetProfile`]):
//!
//! * **Benign manifold.** Benign flows live near a rank-`r` linear
//!   manifold: `x = z·W + μ + ε` with `z ~ N(0, I_r)`, a fixed mixing
//!   matrix `W`, and small isotropic noise `ε`. Real flow features are
//!   strongly correlated (bytes ≈ packets × size, duration ↔ counts),
//!   which is exactly what makes PCA-reconstruction novelty detection
//!   viable; the low-rank model reproduces that property.
//! * **Covariate drift.** The benign mean drifts linearly along the
//!   stream in a fixed random direction, scaled by
//!   [`GeneratorConfig::drift_strength`] — the "changing data stream" the
//!   paper's continual learner must track.
//! * **Heavy-tailed volume features.** Three designated features receive
//!   log-normal bursts, mimicking byte/packet counters.
//! * **Duplicate flows.** Real flow corpora contain large numbers of
//!   byte-identical flows (retransmissions, floods, periodic telemetry).
//!   A replay buffer re-emits recent rows verbatim with configurable
//!   probability. Duplicates degenerate the reachability densities of
//!   LOF-style local-density methods — a failure mode documented for
//!   these exact datasets — while leaving reconstruction- and
//!   isolation-based methods essentially unaffected.
//! * **Attack classes with graded separability.** Attack class `c`
//!   shifts the benign manifold along a class-specific direction with
//!   severity spread over `[1.0, 4.5]` via the golden-ratio
//!   low-discrepancy sequence (so every dataset contains both subtle and
//!   blatant attacks), inflates variance on a class-specific feature
//!   subset, and breaks part of the latent correlation structure.
//!   Crucially, each class's shift direction is a graded mix of a
//!   **within-manifold** component (a latent-space shift mapped through
//!   the mixing matrix — invisible to linear PCA reconstruction error on
//!   raw features, since it stays inside the principal subspace) and an
//!   **off-manifold** component. Real attacks exhibit both flavours;
//!   this is what gives *learned* feature spaces their edge over raw
//!   PCA, the paper's central mechanism.
//!
//! Everything is deterministic given `(profile, seed)`.

use cnd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, DatasetError, DatasetProfile};

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Total number of samples (normal + attack) to generate. The
    /// normal : attack ratio follows the profile's Table I fraction.
    pub total_samples: usize,
    /// Master RNG seed; all randomness derives from it.
    pub seed: u64,
    /// Magnitude of the benign-mean drift across the stream (in feature
    /// standard deviations end-to-end). The paper's scenario implies
    /// mild drift; default `2.0` end-to-end.
    pub drift_strength: f64,
    /// Isotropic noise standard deviation around the benign manifold.
    pub noise_level: f64,
    /// Probability that a flow carries a large volume burst (flash
    /// crowds, retransmission storms). Bursts are heavy-tailed,
    /// off-manifold and *benign* — the classic false-positive source for
    /// linear reconstruction detectors.
    pub burst_probability: f64,
    /// Probability that a flow is a verbatim duplicate of a recent flow
    /// of the same class (retransmissions, floods, periodic telemetry —
    /// ubiquitous in real flow corpora).
    pub duplicate_probability: f64,
}

impl GeneratorConfig {
    /// Default scale used by the benchmark harness (~12k samples).
    pub fn standard(seed: u64) -> Self {
        GeneratorConfig {
            total_samples: 12_000,
            seed,
            drift_strength: 3.0,
            noise_level: 0.3,
            burst_probability: 0.05,
            duplicate_probability: 0.25,
        }
    }

    /// Small scale for unit tests (~3k samples).
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            total_samples: 3_000,
            seed,
            drift_strength: 3.0,
            noise_level: 0.3,
            burst_probability: 0.05,
            duplicate_probability: 0.25,
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::standard(0)
    }
}

/// Draws one standard-normal value (Box–Muller).
fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Random unit vector of dimension `d`.
fn rand_unit<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    let mut v: Vec<f64> = (0..d).map(|_| randn(rng)).collect();
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    for x in &mut v {
        *x /= n;
    }
    v
}

/// Fractional part of `x` (used for the golden-ratio severity spread).
fn frac(x: f64) -> f64 {
    x - x.floor()
}

/// Per-class attack parameters, derived deterministically.
struct AttackClassModel {
    /// Mean-shift direction (unit vector in feature space).
    direction: Vec<f64>,
    /// Shift magnitude — graded separability across classes.
    severity: f64,
    /// Feature indices with inflated variance.
    noisy_features: Vec<usize>,
    /// Latent dimensions whose scale is perturbed (structure break).
    broken_latents: Vec<usize>,
}

/// Generates a scaled synthetic replica of `profile`.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] when `total_samples` is too
/// small to give every attack class at least a handful of samples, or
/// when noise/drift are negative.
pub fn generate(
    profile: DatasetProfile,
    config: &GeneratorConfig,
) -> Result<Dataset, DatasetError> {
    let n_classes = profile.n_attack_classes();
    if config.total_samples < n_classes * 20 + 100 {
        return Err(DatasetError::InvalidConfig {
            name: "total_samples",
            constraint: "must allow >= 20 samples per attack class plus 100 normals",
        });
    }
    if config.noise_level < 0.0 || config.drift_strength < 0.0 {
        return Err(DatasetError::InvalidConfig {
            name: "noise_level/drift_strength",
            constraint: "must be non-negative",
        });
    }
    if !(0.0..=1.0).contains(&config.burst_probability)
        || !(0.0..=1.0).contains(&config.duplicate_probability)
    {
        return Err(DatasetError::InvalidConfig {
            name: "burst_probability/duplicate_probability",
            constraint: "must be in [0, 1]",
        });
    }
    let d = profile.n_features();
    let r = profile.latent_rank();
    // Derive a profile-specific stream so the four datasets differ even
    // with the same seed.
    let profile_salt = match profile {
        DatasetProfile::XIiotId => 0x1107,
        DatasetProfile::WustlIiot => 0x2211,
        DatasetProfile::Cicids2017 => 0x3017,
        DatasetProfile::UnswNb15 => 0x4015,
    };
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(profile_salt),
    );

    // Benign model.
    let mixing = Matrix::from_fn(r, d, |_, _| randn(&mut rng) / (r as f64).sqrt());
    let mean: Vec<f64> = (0..d).map(|_| randn(&mut rng) * 2.0).collect();
    let drift_dir = rand_unit(d, &mut rng);
    let volume_features: Vec<usize> = (0..3).map(|_| rng.gen_range(0..d)).collect();

    // Attack class models with golden-ratio graded severity and a graded
    // within-manifold / off-manifold shift mix.
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    const SILVER: f64 = 0.414_213_562_373_095; // sqrt(2) − 1
    let attack_models: Vec<AttackClassModel> = (1..=n_classes)
        .map(|c| {
            let severity = 1.0 + 3.5 * frac(c as f64 * GOLDEN);
            // Within-manifold direction: a latent shift mapped through W.
            let u = rand_unit(r, &mut rng);
            let mut dir_in = vec![0.0; d];
            for (k, &uk) in u.iter().enumerate() {
                for j in 0..d {
                    dir_in[j] += uk * mixing[(k, j)];
                }
            }
            let norm_in = dir_in.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            for v in &mut dir_in {
                *v /= norm_in;
            }
            let dir_off = rand_unit(d, &mut rng);
            // α ⇒ within-manifold fraction of the shift. Attacks are
            // mostly off-manifold (they break feature correlations) but
            // each class keeps a within-manifold component that linear
            // PCA reconstruction cannot see.
            let alpha = frac(c as f64 * SILVER);
            let mut direction: Vec<f64> = dir_in
                .iter()
                .zip(&dir_off)
                .map(|(i, o)| alpha * i + (1.0 - alpha) * o)
                .collect();
            let n_dir = direction
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt()
                .max(1e-12);
            for v in &mut direction {
                *v /= n_dir;
            }
            let n_noisy = 2 + (c % 5);
            let noisy_features = (0..n_noisy).map(|_| rng.gen_range(0..d)).collect();
            let n_broken = 1 + (c % 3);
            let broken_latents = (0..n_broken).map(|_| rng.gen_range(0..r)).collect();
            AttackClassModel {
                direction,
                severity,
                noisy_features,
                broken_latents,
            }
        })
        .collect();

    // Sample counts: Table I imbalance, skewed class sizes.
    let attack_total = ((config.total_samples as f64) * profile.attack_fraction()).round() as usize;
    let normal_total = config.total_samples - attack_total;
    let raw_weights: Vec<f64> = (1..=n_classes)
        .map(|c| 0.3 + 1.7 * frac(c as f64 * GOLDEN * GOLDEN))
        .collect();
    let weight_sum: f64 = raw_weights.iter().sum();
    let mut class_counts: Vec<usize> = raw_weights
        .iter()
        .map(|w| ((w / weight_sum) * attack_total as f64).round().max(10.0) as usize)
        .collect();
    // Adjust the largest class so totals match exactly.
    let assigned: usize = class_counts.iter().sum();
    if assigned != attack_total {
        let (largest, _) = class_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("non-empty");
        let diff = attack_total as i64 - assigned as i64;
        let new = (class_counts[largest] as i64 + diff).max(10) as usize;
        class_counts[largest] = new;
    }

    let total = normal_total + class_counts.iter().sum::<usize>();
    let mut x = Matrix::zeros(total, d);
    let mut class = Vec::with_capacity(total);

    // Benign stream (drift ordered). Recent rows are re-emitted verbatim
    // with `duplicate_probability` (retransmissions, telemetry beacons).
    const REPLAY_WINDOW: usize = 50;
    for i in 0..normal_total {
        if i > 0 && rng.gen_range(0.0..1.0) < config.duplicate_probability {
            let back = rng.gen_range(1..=REPLAY_WINDOW.min(i));
            let src = x.row(i - back).to_vec();
            x.row_mut(i).copy_from_slice(&src);
            class.push(0);
            continue;
        }
        let t = i as f64 / normal_total.max(1) as f64;
        let row = x.row_mut(i);
        sample_benign(
            row,
            &mixing,
            &mean,
            &drift_dir,
            config.drift_strength * t,
            config.noise_level,
            &volume_features,
            config.burst_probability,
            &mut rng,
        );
        class.push(0);
    }

    // Attack samples, grouped by class. Shifts are 2–9 standard
    // deviations along the class direction: separable by direction-aware
    // methods (K-Means centroids, learned features, PCA residuals for
    // the off-manifold part) yet small against the ~sqrt(2d)·σ
    // nearest-neighbour distances that plain kNN density methods see.
    let shift_scale = 2.0;
    let mut row_idx = normal_total;
    for (ci, model) in attack_models.iter().enumerate() {
        let class_start = row_idx;
        for _ in 0..class_counts[ci] {
            // Floods and scans duplicate even more aggressively than
            // benign traffic.
            if row_idx > class_start && rng.gen_range(0.0..1.0) < config.duplicate_probability {
                let span = (row_idx - class_start).min(REPLAY_WINDOW);
                let back = rng.gen_range(1..=span);
                let src = x.row(row_idx - back).to_vec();
                x.row_mut(row_idx).copy_from_slice(&src);
                class.push(ci + 1);
                row_idx += 1;
                continue;
            }
            // Attacks appear throughout the stream; give them a random
            // drift phase so they are not trivially separable by drift.
            let t = rng.gen_range(0.0..1.0);
            let row = x.row_mut(row_idx);
            sample_attack(
                row,
                &mixing,
                &mean,
                &drift_dir,
                config.drift_strength * t,
                config.noise_level,
                &volume_features,
                model,
                shift_scale,
                config.burst_probability,
                &mut rng,
            );
            class.push(ci + 1);
            row_idx += 1;
        }
    }

    let mut class_names = vec!["normal".to_string()];
    for c in 1..=n_classes {
        class_names.push(format!("{}-attack-{c:02}", profile.name().to_lowercase()));
    }

    Ok(Dataset {
        x,
        class,
        class_names,
        name: profile.name().to_string(),
    })
}

#[allow(clippy::too_many_arguments)]
fn sample_benign<R: Rng + ?Sized>(
    row: &mut [f64],
    mixing: &Matrix,
    mean: &[f64],
    drift_dir: &[f64],
    drift: f64,
    noise: f64,
    volume_features: &[usize],
    burst_prob: f64,
    rng: &mut R,
) {
    let r = mixing.rows();
    let z: Vec<f64> = (0..r).map(|_| randn(rng)).collect();
    for (j, out) in row.iter_mut().enumerate() {
        let mut v = mean[j] + drift * drift_dir[j];
        for (k, &zk) in z.iter().enumerate() {
            v += zk * mixing[(k, j)];
        }
        v += noise * randn(rng);
        *out = v;
    }
    // Heavy-tailed volume counters.
    for &f in volume_features {
        let burst = (0.5 * randn(rng)).exp() * 0.5;
        row[f] += burst;
    }
    apply_heavy_burst(row, volume_features, burst_prob, rng);
}

/// Occasionally superimposes a large, heavy-tailed volume burst (flash
/// crowd / retransmission storm). These events are benign but lie far
/// off the low-rank manifold — the canonical false-positive source for
/// linear reconstruction detectors, and the reason bounded learned
/// features are more robust.
fn apply_heavy_burst<R: Rng + ?Sized>(
    row: &mut [f64],
    volume_features: &[usize],
    burst_prob: f64,
    rng: &mut R,
) {
    if rng.gen_range(0.0..1.0) < burst_prob {
        for &f in volume_features {
            row[f] += (1.0 + randn(rng).abs()).exp();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sample_attack<R: Rng + ?Sized>(
    row: &mut [f64],
    mixing: &Matrix,
    mean: &[f64],
    drift_dir: &[f64],
    drift: f64,
    noise: f64,
    volume_features: &[usize],
    model: &AttackClassModel,
    shift_scale: f64,
    burst_prob: f64,
    rng: &mut R,
) {
    let r = mixing.rows();
    let mut z: Vec<f64> = (0..r).map(|_| randn(rng)).collect();
    // Structure break: some latent dimensions inflate with severity —
    // a *within-manifold* variance burst that linear PCA reconstruction
    // cannot see but density/isolation methods and learned features can.
    for &k in &model.broken_latents {
        z[k] *= 1.5 + 0.5 * model.severity;
    }
    for (j, out) in row.iter_mut().enumerate() {
        let mut v = mean[j] + drift * drift_dir[j];
        for (k, &zk) in z.iter().enumerate() {
            v += zk * mixing[(k, j)];
        }
        v += model.severity * shift_scale * model.direction[j];
        v += noise * randn(rng);
        *out = v;
    }
    // Mild per-feature jitter on a class-specific subset — kept of the
    // same order as the benign manifold noise so raw-feature PCA cannot
    // trivially separate attacks by off-manifold energy alone.
    for &f in &model.noisy_features {
        row[f] += 0.4 * randn(rng);
    }
    for &f in volume_features {
        let burst = (0.5 * randn(rng)).exp() * 0.5;
        row[f] += burst;
    }
    apply_heavy_burst(row, volume_features, burst_prob, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnd_linalg::stats;

    #[test]
    fn generates_requested_structure() {
        let d = generate(DatasetProfile::UnswNb15, &GeneratorConfig::small(1)).unwrap();
        assert_eq!(d.n_features(), 42);
        assert_eq!(d.n_attack_classes(), 10);
        assert!(d.len() >= 2_900 && d.len() <= 3_200, "len = {}", d.len());
        assert!(d.x.is_finite());
    }

    #[test]
    fn imbalance_follows_profile() {
        let d = generate(DatasetProfile::WustlIiot, &GeneratorConfig::standard(2)).unwrap();
        let frac = d.attack_count() as f64 / d.len() as f64;
        let expect = DatasetProfile::WustlIiot.attack_fraction();
        assert!(
            (frac - expect).abs() < 0.05,
            "frac = {frac}, expected {expect}"
        );
    }

    #[test]
    fn every_class_represented() {
        for p in DatasetProfile::ALL {
            let d = generate(p, &GeneratorConfig::small(3)).unwrap();
            for c in 1..=p.n_attack_classes() {
                assert!(
                    d.class_indices(c).count() >= 10,
                    "{p}: class {c} has too few samples"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(DatasetProfile::XIiotId, &GeneratorConfig::small(9)).unwrap();
        let b = generate(DatasetProfile::XIiotId, &GeneratorConfig::small(9)).unwrap();
        assert_eq!(a.x, b.x);
        assert_eq!(a.class, b.class);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetProfile::XIiotId, &GeneratorConfig::small(1)).unwrap();
        let b = generate(DatasetProfile::XIiotId, &GeneratorConfig::small(2)).unwrap();
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn profiles_differ_with_same_seed() {
        let a = generate(DatasetProfile::UnswNb15, &GeneratorConfig::small(1)).unwrap();
        let b = generate(DatasetProfile::WustlIiot, &GeneratorConfig::small(1)).unwrap();
        assert_ne!(a.x.shape(), b.x.shape());
    }

    #[test]
    fn benign_data_is_low_rank() {
        // Most benign variance should concentrate in ~latent_rank dims.
        let p = DatasetProfile::UnswNb15;
        let d = generate(p, &GeneratorConfig::small(4)).unwrap();
        let normals =
            d.x.select_rows(&d.normal_indices().collect::<Vec<_>>())
                .unwrap();
        let cov = stats::covariance(&normals).unwrap();
        let eig = cnd_linalg::eigen::symmetric_eigen(&cov, 1e-6).unwrap();
        let total: f64 = eig.eigenvalues.iter().sum();
        let top: f64 = eig.eigenvalues[..p.latent_rank()].iter().sum();
        assert!(
            top / total > 0.75,
            "top-{} explain only {:.2}",
            p.latent_rank(),
            top / total
        );
    }

    #[test]
    fn drift_moves_benign_mean() {
        let p = DatasetProfile::UnswNb15;
        let cfg = GeneratorConfig {
            drift_strength: 3.0,
            ..GeneratorConfig::small(5)
        };
        let d = generate(p, &cfg).unwrap();
        let normals: Vec<usize> = d.normal_indices().collect();
        let early = d.x.select_rows(&normals[..200]).unwrap();
        let late = d.x.select_rows(&normals[normals.len() - 200..]).unwrap();
        let me = stats::column_means(&early).unwrap();
        let ml = stats::column_means(&late).unwrap();
        let shift = cnd_linalg::vector::distance(&me, &ml);
        assert!(shift > 1.0, "drift shift = {shift}");
    }

    #[test]
    fn severity_grading_spreads_classes() {
        // With golden-ratio spacing there must exist both a subtle class
        // (severity < 1.5) and a blatant one (severity > 3.5) among 10.
        const GOLDEN: f64 = 0.618_033_988_749_894_9;
        let severities: Vec<f64> = (1..=10)
            .map(|c| 1.0 + 3.5 * frac(c as f64 * GOLDEN))
            .collect();
        assert!(severities.iter().any(|&s| s < 1.5));
        assert!(severities.iter().any(|&s| s > 3.5));
    }

    #[test]
    fn config_validation() {
        let tiny = GeneratorConfig {
            total_samples: 50,
            ..GeneratorConfig::small(0)
        };
        assert!(matches!(
            generate(DatasetProfile::XIiotId, &tiny),
            Err(DatasetError::InvalidConfig { .. })
        ));
        let neg = GeneratorConfig {
            noise_level: -1.0,
            ..GeneratorConfig::small(0)
        };
        assert!(matches!(
            generate(DatasetProfile::UnswNb15, &neg),
            Err(DatasetError::InvalidConfig { .. })
        ));
    }
}
