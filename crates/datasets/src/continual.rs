//! Continual-learning data preparation (paper Section III-A).
//!
//! Given a labelled dataset, the protocol is:
//!
//! 1. Remove 10% of the normal data as the clean subset `N_c` used to
//!    fit the PCA novelty detector. (The paper does not specify how the
//!    10% is chosen; we take the *first* 10% of the benign stream —
//!    clean, verified-normal data is realistically collected before
//!    deployment, so `N_c` reflects only the initial traffic regime and
//!    later drift must be absorbed by the model, not the data split.)
//! 2. Split the remaining normal data into `m` contiguous stream
//!    segments of size `0.9·|N| / m` (contiguity preserves the benign
//!    drift ordering).
//! 3. Distribute the attack classes so each experience receives
//!    `|C| / m` classes unique to it — future experiences therefore
//!    contain zero-day attacks relative to earlier training.
//! 4. Split every experience into an **unlabelled** training part
//!    (`X_train` only) and a labelled test part (`X_test`, `Y_test`).

use cnd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, DatasetError};

/// One experience of the continual stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Experience {
    /// Unlabelled training data (mixed normal + this experience's
    /// attacks), as the deployment stream would present it.
    pub train_x: Matrix,
    /// Ground-truth class per training row, **withheld from unsupervised
    /// methods**. It exists only so the experiment runner can grant the
    /// UCL baselines (ADCN, LwF) the small labelled seed set the paper
    /// concedes them (Section IV-A); CND-IDS never reads it.
    pub train_class: Vec<usize>,
    /// Test features.
    pub test_x: Matrix,
    /// Binary test labels (`0` normal / `1` attack).
    pub test_y: Vec<u8>,
    /// Fine-grained class id per test row (`0` normal).
    pub test_class: Vec<usize>,
    /// The attack classes assigned (unique) to this experience.
    pub attack_classes: Vec<usize>,
}

/// The full continual split: clean normal subset plus experiences.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinualSplit {
    /// `N_c` — the clean normal subset used to fit the novelty detector.
    pub clean_normal: Matrix,
    /// The experience sequence `E_0 … E_{m−1}`.
    pub experiences: Vec<Experience>,
}

impl ContinualSplit {
    /// Number of experiences `m`.
    pub fn len(&self) -> usize {
        self.experiences.len()
    }

    /// `true` if there are no experiences.
    pub fn is_empty(&self) -> bool {
        self.experiences.is_empty()
    }
}

/// Fraction of normal data reserved as `N_c` (paper: 10%).
pub const CLEAN_NORMAL_FRACTION: f64 = 0.10;

/// Prepares the continual split per Section III-A.
///
/// `train_fraction` is the within-experience train/test split (the paper
/// does not state a number; `0.7` is our default throughout).
///
/// # Errors
///
/// * [`DatasetError::InvalidConfig`] for `m == 0`, `m == 1`, or a train
///   fraction outside `(0, 1)`.
/// * [`DatasetError::BadSplit`] when the dataset has fewer attack
///   classes than experiences, or not enough normal data.
///
/// # Example
///
/// ```
/// use cnd_datasets::{DatasetProfile, GeneratorConfig, continual};
///
/// let data = DatasetProfile::WustlIiot.generate(&GeneratorConfig::small(1))?;
/// let split = continual::prepare(&data, 4, 0.7, 1)?;
/// assert_eq!(split.len(), 4);
/// // WUSTL has exactly 4 attack classes: one per experience.
/// for e in &split.experiences {
///     assert_eq!(e.attack_classes.len(), 1);
/// }
/// # Ok::<(), cnd_datasets::DatasetError>(())
/// ```
pub fn prepare(
    dataset: &Dataset,
    m: usize,
    train_fraction: f64,
    seed: u64,
) -> Result<ContinualSplit, DatasetError> {
    if m < 2 {
        return Err(DatasetError::InvalidConfig {
            name: "m",
            constraint: "need at least 2 experiences",
        });
    }
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DatasetError::InvalidConfig {
            name: "train_fraction",
            constraint: "must be in (0, 1)",
        });
    }
    let n_classes = dataset.n_attack_classes();
    if n_classes < m {
        return Err(DatasetError::BadSplit {
            reason: format!("{n_classes} attack classes cannot fill {m} experiences"),
        });
    }
    let normals: Vec<usize> = dataset.normal_indices().collect();
    if normals.len() < m * 20 {
        return Err(DatasetError::BadSplit {
            reason: format!(
                "{} normal samples are too few for {m} experiences",
                normals.len()
            ),
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);

    // 1. N_c: the first 10% of the benign stream (pre-deployment
    // collection; later drift regimes are never part of N_c).
    let n_clean = ((normals.len() as f64) * CLEAN_NORMAL_FRACTION)
        .round()
        .max(1.0) as usize;
    let clean_idx: Vec<usize> = normals[..n_clean].to_vec();
    let rest_idx: Vec<usize> = normals[n_clean..].to_vec();
    let clean_normal = dataset.x.select_rows(&clean_idx)?;

    // 2. Contiguous normal segments per experience.
    let seg = rest_idx.len() / m;
    let mut normal_chunks: Vec<Vec<usize>> = Vec::with_capacity(m);
    for e in 0..m {
        let start = e * seg;
        let end = if e == m - 1 {
            rest_idx.len()
        } else {
            (e + 1) * seg
        };
        normal_chunks.push(rest_idx[start..end].to_vec());
    }

    // 3. Attack classes shuffled then dealt round-robin.
    let mut classes: Vec<usize> = (1..=n_classes).collect();
    for i in (1..classes.len()).rev() {
        let j = rng.gen_range(0..=i);
        classes.swap(i, j);
    }
    let mut class_assignment: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (pos, c) in classes.into_iter().enumerate() {
        class_assignment[pos % m].push(c);
    }

    // 4. Build experiences.
    let mut experiences = Vec::with_capacity(m);
    for e in 0..m {
        let mut idx = normal_chunks[e].clone();
        for &c in &class_assignment[e] {
            idx.extend(dataset.class_indices(c));
        }
        // Shuffle the experience so train/test are exchangeable.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_train = ((idx.len() as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, idx.len().saturating_sub(1));
        let (train_ids, test_ids) = idx.split_at(n_train);
        let train_x = dataset.x.select_rows(train_ids)?;
        let train_class: Vec<usize> = train_ids.iter().map(|&i| dataset.class[i]).collect();
        let test_x = dataset.x.select_rows(test_ids)?;
        let test_class: Vec<usize> = test_ids.iter().map(|&i| dataset.class[i]).collect();
        let test_y: Vec<u8> = test_class.iter().map(|&c| u8::from(c != 0)).collect();
        experiences.push(Experience {
            train_x,
            train_class,
            test_x,
            test_y,
            test_class,
            attack_classes: class_assignment[e].clone(),
        });
    }

    Ok(ContinualSplit {
        clean_normal,
        experiences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetProfile, GeneratorConfig};

    fn data() -> Dataset {
        DatasetProfile::UnswNb15
            .generate(&GeneratorConfig::small(11))
            .unwrap()
    }

    #[test]
    fn produces_m_experiences_with_disjoint_classes() {
        let d = data();
        let split = prepare(&d, 5, 0.7, 3).unwrap();
        assert_eq!(split.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for e in &split.experiences {
            assert_eq!(e.attack_classes.len(), 2); // 10 classes / 5 exps
            for &c in &e.attack_classes {
                assert!(seen.insert(c), "class {c} assigned twice");
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn clean_normal_is_ten_percent() {
        let d = data();
        let split = prepare(&d, 5, 0.7, 3).unwrap();
        let expected = (d.normal_count() as f64 * CLEAN_NORMAL_FRACTION).round();
        let got = split.clean_normal.rows() as f64;
        assert!(
            (got - expected).abs() <= expected * 0.05 + 2.0,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn train_test_fractions() {
        let d = data();
        let split = prepare(&d, 5, 0.7, 3).unwrap();
        for e in &split.experiences {
            let total = e.train_x.rows() + e.test_x.rows();
            let frac = e.train_x.rows() as f64 / total as f64;
            assert!((frac - 0.7).abs() < 0.02, "train fraction = {frac}");
            assert_eq!(e.test_x.rows(), e.test_y.len());
            assert_eq!(e.test_x.rows(), e.test_class.len());
        }
    }

    #[test]
    fn test_labels_match_classes() {
        let d = data();
        let split = prepare(&d, 5, 0.7, 3).unwrap();
        for e in &split.experiences {
            for (y, c) in e.test_y.iter().zip(&e.test_class) {
                assert_eq!(*y != 0, *c != 0);
            }
            // Test classes limited to this experience's attacks + normal.
            for &c in &e.test_class {
                assert!(c == 0 || e.attack_classes.contains(&c));
            }
        }
    }

    #[test]
    fn every_experience_contains_both_kinds() {
        let d = data();
        let split = prepare(&d, 5, 0.7, 3).unwrap();
        for e in &split.experiences {
            assert!(e.test_y.contains(&0));
            assert!(e.test_y.contains(&1));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data();
        let a = prepare(&d, 5, 0.7, 9).unwrap();
        let b = prepare(&d, 5, 0.7, 9).unwrap();
        assert_eq!(a, b);
        let c = prepare(&d, 5, 0.7, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn wustl_one_class_per_experience() {
        let d = DatasetProfile::WustlIiot
            .generate(&GeneratorConfig::small(2))
            .unwrap();
        let split = prepare(&d, 4, 0.7, 1).unwrap();
        for e in &split.experiences {
            assert_eq!(e.attack_classes.len(), 1);
        }
    }

    #[test]
    fn uneven_division_spreads_remainder() {
        // X-IIoTID: 18 classes over 5 experiences -> sizes 4,4,4,3,3.
        let d = DatasetProfile::XIiotId
            .generate(&GeneratorConfig::small(2))
            .unwrap();
        let split = prepare(&d, 5, 0.7, 1).unwrap();
        let mut sizes: Vec<usize> = split
            .experiences
            .iter()
            .map(|e| e.attack_classes.len())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4, 4, 4]);
    }

    #[test]
    fn validation_errors() {
        let d = data();
        assert!(matches!(
            prepare(&d, 1, 0.7, 0),
            Err(DatasetError::InvalidConfig { .. })
        ));
        assert!(matches!(
            prepare(&d, 5, 1.0, 0),
            Err(DatasetError::InvalidConfig { .. })
        ));
        // More experiences than classes.
        assert!(matches!(
            prepare(&d, 11, 0.7, 0),
            Err(DatasetError::BadSplit { .. })
        ));
    }
}
