use std::error::Error;
use std::fmt;

use cnd_linalg::LinalgError;

/// Error type for dataset generation, loading and preparation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// An underlying matrix operation failed.
    Linalg(LinalgError),
    /// A configuration value was invalid.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        constraint: &'static str,
    },
    /// The continual split cannot be formed (e.g. more experiences than
    /// attack classes).
    BadSplit {
        /// Human-readable description.
        reason: String,
    },
    /// CSV parsing failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error while reading a dataset file.
    Io(std::io::Error),
    /// Writing or reading a `.cnds` flow store failed.
    Storage(cnd_store::StoreError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            DatasetError::InvalidConfig { name, constraint } => {
                write!(f, "config {name} violates constraint: {constraint}")
            }
            DatasetError::BadSplit { reason } => write!(f, "cannot split dataset: {reason}"),
            DatasetError::Parse { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Storage(e) => write!(f, "flow storage error: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Linalg(e) => Some(e),
            DatasetError::Io(e) => Some(e),
            DatasetError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for DatasetError {
    fn from(e: LinalgError) -> Self {
        DatasetError::Linalg(e)
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<cnd_store::StoreError> for DatasetError {
    fn from(e: cnd_store::StoreError) -> Self {
        DatasetError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = DatasetError::BadSplit {
            reason: "too many experiences".into(),
        };
        assert!(e.to_string().contains("too many experiences"));
        let p = DatasetError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
