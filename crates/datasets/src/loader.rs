//! Minimal CSV loader so the pipeline can run on the *real* intrusion
//! datasets when a user has them on disk.
//!
//! Expected layout: numeric feature columns with the class label in the
//! last column. Labels equal (case-insensitively) to `normal`, `benign`
//! or `0` map to class `0`; every other distinct label becomes an attack
//! class in order of first appearance.

use std::io::BufRead;
use std::path::Path;

use cnd_linalg::Matrix;

use crate::{Dataset, DatasetError};

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// * [`DatasetError::Io`] on file-system failures.
/// * [`DatasetError::Parse`] on non-numeric features, ragged rows, or an
///   empty file.
pub fn read_csv<P: AsRef<Path>>(path: P, has_header: bool) -> Result<Dataset, DatasetError> {
    let file = std::fs::File::open(&path)?;
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    read_csv_from(std::io::BufReader::new(file), has_header, name)
}

/// Normalizes one raw CSV line into trimmed fields, absorbing the
/// encoding quirks real capture exports have:
///
/// * a UTF-8 byte-order mark glued to the first line (common in files
///   exported from Windows tooling),
/// * CRLF line endings (the trailing `\r` survives [`BufRead::lines`]),
/// * a single trailing delimiter (`1,2,dos,` — the empty final field is
///   a formatting artifact, not an empty label).
///
/// Returns `None` for lines that are blank after normalization.
pub(crate) fn split_fields(line: &str, first_line: bool) -> Option<Vec<&str>> {
    let mut s = line;
    if first_line {
        s = s.strip_prefix('\u{feff}').unwrap_or(s);
    }
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let mut fields: Vec<&str> = s.split(',').map(str::trim).collect();
    if fields.len() > 1 && fields.last() == Some(&"") {
        fields.pop();
    }
    Some(fields)
}

/// Parses the feature prefix of a field row (everything but the label).
pub(crate) fn parse_features(
    feat_fields: &[&str],
    human_line: usize,
) -> Result<Vec<f64>, DatasetError> {
    let mut row = Vec::with_capacity(feat_fields.len());
    for f in feat_fields {
        let v: f64 = f.parse().map_err(|_| DatasetError::Parse {
            line: human_line,
            message: format!("non-numeric feature {f:?}"),
        })?;
        row.push(v);
    }
    Ok(row)
}

/// Interns class labels in order of first appearance; index 0 is always
/// `"normal"` (labels `normal` / `benign` / `0`, case-insensitively).
pub(crate) struct LabelMap {
    names: Vec<String>,
}

impl LabelMap {
    pub(crate) fn new() -> Self {
        LabelMap {
            names: vec!["normal".to_string()],
        }
    }

    pub(crate) fn intern(&mut self, label: &str) -> usize {
        if label.eq_ignore_ascii_case("normal")
            || label.eq_ignore_ascii_case("benign")
            || label == "0"
        {
            return 0;
        }
        match self.names.iter().position(|n| n == label) {
            Some(p) => p,
            None => {
                self.names.push(label.to_string());
                self.names.len() - 1
            }
        }
    }

    pub(crate) fn into_names(self) -> Vec<String> {
        self.names
    }
}

/// Reads a dataset from any [`BufRead`] source (pass `&mut reader` if you
/// need the reader back afterwards).
///
/// Tolerates a UTF-8 BOM, CRLF line endings, and a single trailing
/// delimiter per row; parse errors carry accurate 1-based line numbers.
///
/// # Errors
///
/// See [`read_csv`].
pub fn read_csv_from<R: BufRead>(
    reader: R,
    has_header: bool,
    name: String,
) -> Result<Dataset, DatasetError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut class: Vec<usize> = Vec::new();
    let mut labels = LabelMap::new();
    let mut width: Option<usize> = None;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let human_line = line_no + 1;
        if line_no == 0 && has_header {
            continue;
        }
        let Some(fields) = split_fields(&line, line_no == 0) else {
            continue;
        };
        if fields.len() < 2 {
            return Err(DatasetError::Parse {
                line: human_line,
                message: "need at least one feature and a label".into(),
            });
        }
        let (feat_fields, label_field) = fields.split_at(fields.len() - 1);
        match width {
            None => width = Some(feat_fields.len()),
            Some(w) if w != feat_fields.len() => {
                return Err(DatasetError::Parse {
                    line: human_line,
                    message: format!("expected {w} features, found {}", feat_fields.len()),
                })
            }
            _ => {}
        }
        rows.push(parse_features(feat_fields, human_line)?);
        class.push(labels.intern(label_field[0]));
    }
    if rows.is_empty() {
        return Err(DatasetError::Parse {
            line: 0,
            message: "file contained no data rows".into(),
        });
    }
    let x = Matrix::from_rows(&rows)?;
    Ok(Dataset {
        x,
        class,
        class_names: labels.into_names(),
        name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn load(s: &str, header: bool) -> Result<Dataset, DatasetError> {
        read_csv_from(Cursor::new(s.to_string()), header, "test".into())
    }

    #[test]
    fn parses_basic_file() {
        let d = load("1.0,2.0,normal\n3.0,4.0,dos\n5.0,6.0,dos\n", false).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class, vec![0, 1, 1]);
        assert_eq!(d.class_names, vec!["normal", "dos"]);
    }

    #[test]
    fn skips_header_and_blank_lines() {
        let d = load("f1,f2,label\n1,2,benign\n\n3,4,scan\n", true).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.binary_labels().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn numeric_zero_label_is_normal() {
        let d = load("1,2,0\n3,4,1\n", false).unwrap();
        assert_eq!(d.class, vec![0, 1]);
    }

    #[test]
    fn multiple_attack_classes_ordered_by_appearance() {
        let d = load("1,a_x\n2,normal\n3,b_y\n4,a_x\n", false).unwrap();
        assert_eq!(d.class, vec![1, 0, 2, 1]);
        assert_eq!(d.class_names, vec!["normal", "a_x", "b_y"]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let e = load("1,2,normal\n1,normal\n", false);
        assert!(matches!(e, Err(DatasetError::Parse { line: 2, .. })));
    }

    #[test]
    fn rejects_non_numeric_feature() {
        let e = load("abc,2,normal\n", false);
        assert!(matches!(e, Err(DatasetError::Parse { line: 1, .. })));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(load("", false), Err(DatasetError::Parse { .. })));
        assert!(matches!(
            load("header,only\n", true),
            Err(DatasetError::Parse { .. })
        ));
    }

    #[test]
    fn handles_crlf_line_endings() {
        let d = load("1.0,2.0,normal\r\n3.0,4.0,dos\r\n", false).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.class, vec![0, 1]);
        assert_eq!(d.class_names, vec!["normal", "dos"]);
    }

    #[test]
    fn strips_utf8_bom_on_first_line() {
        let d = load("\u{feff}1.0,2.0,normal\n3.0,4.0,dos\n", false).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.x.row(0), &[1.0, 2.0]);
        // BOM before a header line must not corrupt header detection either.
        let h = load("\u{feff}f1,f2,label\n1,2,benign\n", true).unwrap();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn tolerates_single_trailing_delimiter() {
        let d = load("1.0,2.0,normal,\r\n3.0,4.0,dos,\n", false).unwrap();
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class, vec![0, 1]);
        assert_eq!(
            d.class_names,
            vec!["normal", "dos"],
            "the empty trailing field must not become a label"
        );
        // Two trailing delimiters are not a formatting artifact — only
        // one is absorbed, so the row no longer parses and the error
        // points at the right line.
        let e = load("1.0,2.0,normal,,\n", false);
        assert!(matches!(e, Err(DatasetError::Parse { line: 1, .. })));
    }

    #[test]
    fn errors_keep_one_based_line_numbers_with_quirks_present() {
        // CRLF + BOM + a bad row: the reported line must still be the
        // 1-based physical line of the bad row.
        let e = load("\u{feff}f1,f2,label\r\n1,2,benign\r\nbad,2,dos\r\n", true);
        assert!(
            matches!(e, Err(DatasetError::Parse { line: 3, .. })),
            "{e:?}"
        );
    }

    #[test]
    fn rejects_single_column() {
        assert!(matches!(
            load("justlabel\n", false),
            Err(DatasetError::Parse { .. })
        ));
    }
}
