//! # cnd-datasets
//!
//! Intrusion-dataset substrate for the CND-IDS reproduction.
//!
//! The paper evaluates on four labelled intrusion datasets (X-IIoTID,
//! WUSTL-IIoT, CICIDS2017, UNSW-NB15). Those corpora are multi-gigabyte,
//! non-redistributable CSV dumps that are not available in this
//! environment, so this crate provides **seeded synthetic flow-feature
//! generators**, one [`DatasetProfile`] per paper dataset, that preserve
//! the *structural* properties the paper's evaluation depends on:
//!
//! * the same number of attack classes (18 / 4 / 15 / 10) with **graded
//!   separability** — some classes barely deviate from benign traffic,
//!   some are blatant;
//! * the same normal : attack imbalance ratios as the paper's Table I;
//! * benign traffic lying near a **low-dimensional manifold** (flow
//!   features are strongly correlated in real traffic — this is what
//!   makes PCA-style novelty detection work) with mild **covariate drift**
//!   along the stream;
//! * heavy-tailed "volume" features (byte/packet counts).
//!
//! See DESIGN.md §1 for the full substitution rationale.
//!
//! The crate also implements the paper's **continual-learning data
//! preparation** (Section III-A) verbatim in [`continual::prepare`]:
//! 10% of normal data becomes the clean subset `N_c`, the remainder plus
//! all attacks are divided into `m` experiences with disjoint attack
//! classes, and each experience is split into an unlabelled training part
//! and a labelled test part. A small CSV loader ([`loader`]) lets users
//! run the same pipeline on the real datasets if they have them.
//!
//! # Example
//!
//! ```
//! use cnd_datasets::{DatasetProfile, GeneratorConfig};
//!
//! let data = DatasetProfile::UnswNb15.generate(&GeneratorConfig::small(7))?;
//! assert_eq!(data.n_attack_classes(), 10);
//! let split = cnd_datasets::continual::prepare(&data, 5, 0.7, 7)?;
//! assert_eq!(split.experiences.len(), 5);
//! # Ok::<(), cnd_datasets::DatasetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;

pub mod continual;
pub mod generator;
pub mod ingest;
pub mod loader;
pub mod profiles;

pub use dataset::Dataset;
pub use error::DatasetError;
pub use generator::GeneratorConfig;
pub use ingest::{ingest_csv_from, ingest_csv_to_store, IngestOptions, IngestReport};
pub use profiles::DatasetProfile;
