//! Streaming CSV → `.cnds` ingestion with quarantine reporting.
//!
//! [`read_csv`](crate::loader::read_csv) materializes the whole file; a real
//! capture can be far larger than memory. [`ingest_csv_to_store`]
//! streams the CSV row by row into a [`StoreWriter`], so peak memory is
//! one line regardless of input size, and the output store can then
//! feed the chunked train/score paths.
//!
//! Ingestion is *quarantine-style*: a malformed row (ragged width,
//! non-numeric or non-finite feature, too few fields) does not abort
//! the run — it is skipped, counted, and reported with its 1-based line
//! number and reason. When any rows are quarantined a sidecar report
//! (`<store>.quarantine`) is written next to the store so the operator
//! can audit exactly what was dropped; the in-memory report keeps the
//! first few entries for error messages. A clean run removes any stale
//! sidecar from a previous attempt.
//!
//! Labels are interned exactly like the in-memory loader (index 0 =
//! `normal`/`benign`/`0`, attacks in order of first appearance) and
//! stored as `u16` class indices, so `class_names[label]` recovers the
//! original string.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use cnd_store::{DType, StoreMeta, StoreWriter};

use crate::loader::{parse_features, split_fields, LabelMap};
use crate::DatasetError;

/// How many quarantined rows the in-memory report retains in detail
/// (the sidecar file always records all of them).
pub const QUARANTINE_DETAIL_CAP: usize = 32;

/// Options for [`ingest_csv_to_store`].
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Skip the first line as a header.
    pub has_header: bool,
    /// Element type of the output store (`F64` preserves bits; `F32`
    /// halves the footprint at serving precision).
    pub dtype: DType,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            has_header: true,
            dtype: DType::F64,
        }
    }
}

/// One row that was rejected during ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based physical line number in the source CSV.
    pub line: usize,
    /// Why the row was rejected.
    pub reason: String,
}

/// Outcome of an ingestion run.
#[derive(Debug)]
pub struct IngestReport {
    /// Metadata of the finalized store.
    pub meta: StoreMeta,
    /// Rows written to the store.
    pub rows_written: u64,
    /// Rows skipped as malformed.
    pub rows_quarantined: u64,
    /// Class names in intern order (index = stored `u16` label).
    pub class_names: Vec<String>,
    /// First [`QUARANTINE_DETAIL_CAP`] quarantined rows.
    pub quarantined: Vec<QuarantinedRow>,
    /// Path of the sidecar report, when any rows were quarantined.
    pub sidecar: Option<PathBuf>,
}

/// Streams a CSV file into a `.cnds` store at `store_path`.
///
/// # Errors
///
/// * [`DatasetError::Io`] on filesystem failures.
/// * [`DatasetError::Parse`] when no valid data row exists at all.
/// * [`DatasetError::Storage`] when the store cannot be written.
pub fn ingest_csv_to_store(
    csv_path: impl AsRef<Path>,
    store_path: impl AsRef<Path>,
    options: &IngestOptions,
) -> Result<IngestReport, DatasetError> {
    let file = std::fs::File::open(csv_path.as_ref())?;
    ingest_csv_from(std::io::BufReader::new(file), store_path, options)
}

/// Streams CSV rows from any [`BufRead`] source into a `.cnds` store.
///
/// See [`ingest_csv_to_store`].
pub fn ingest_csv_from<R: BufRead>(
    reader: R,
    store_path: impl AsRef<Path>,
    options: &IngestOptions,
) -> Result<IngestReport, DatasetError> {
    let store_path = store_path.as_ref();
    let _span = cnd_obs::span!("ingest.csv");
    let mut labels = LabelMap::new();
    let mut width: Option<usize> = None;
    let mut writer: Option<StoreWriter> = None;
    let mut rows_written = 0u64;
    let mut quarantined_all: Vec<QuarantinedRow> = Vec::new();

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let human_line = line_no + 1;
        if line_no == 0 && options.has_header {
            continue;
        }
        let Some(fields) = split_fields(&line, line_no == 0) else {
            continue;
        };
        let quarantine = |reason: String, q: &mut Vec<QuarantinedRow>| {
            q.push(QuarantinedRow {
                line: human_line,
                reason,
            });
        };
        if fields.len() < 2 {
            quarantine(
                "need at least one feature and a label".into(),
                &mut quarantined_all,
            );
            continue;
        }
        let (feat_fields, label_field) = fields.split_at(fields.len() - 1);
        if let Some(w) = width {
            if feat_fields.len() != w {
                quarantine(
                    format!("expected {w} features, found {}", feat_fields.len()),
                    &mut quarantined_all,
                );
                continue;
            }
        }
        let row = match parse_features(feat_fields, human_line) {
            Ok(r) => r,
            Err(DatasetError::Parse { message, .. }) => {
                quarantine(message, &mut quarantined_all);
                continue;
            }
            Err(e) => return Err(e),
        };
        if let Some(bad) = row.iter().find(|v| !v.is_finite()) {
            quarantine(format!("non-finite feature {bad}"), &mut quarantined_all);
            continue;
        }
        let cls = labels.intern(label_field[0]);
        let Ok(label) = u16::try_from(cls) else {
            quarantine(
                format!("class index {cls} exceeds the u16 label width"),
                &mut quarantined_all,
            );
            continue;
        };
        // First valid row fixes the schema and opens the store.
        if width.is_none() {
            width = Some(row.len());
            writer = Some(StoreWriter::create(
                store_path,
                row.len(),
                options.dtype,
                true,
            )?);
        }
        writer
            .as_mut()
            .expect("writer opened with the first valid row")
            .push_row(&row, Some(label))?;
        rows_written += 1;
    }

    let Some(writer) = writer else {
        return Err(DatasetError::Parse {
            line: 0,
            message: "file contained no valid data rows".into(),
        });
    };
    let meta = writer.finalize()?;

    let rows_quarantined = quarantined_all.len() as u64;
    cnd_obs::counter_add("ingest.rows.count", rows_written);
    cnd_obs::counter_add("ingest.quarantined.count", rows_quarantined);

    let mut sidecar_path = store_path.as_os_str().to_owned();
    sidecar_path.push(".quarantine");
    let sidecar_path = PathBuf::from(sidecar_path);
    let sidecar = if quarantined_all.is_empty() {
        let _ = std::fs::remove_file(&sidecar_path);
        None
    } else {
        let mut out = std::io::BufWriter::new(std::fs::File::create(&sidecar_path)?);
        for q in &quarantined_all {
            writeln!(out, "line {}: {}", q.line, q.reason)?;
        }
        out.flush()?;
        Some(sidecar_path)
    };

    quarantined_all.truncate(QUARANTINE_DETAIL_CAP);
    Ok(IngestReport {
        meta,
        rows_written,
        rows_quarantined,
        class_names: labels.into_names(),
        quarantined: quarantined_all,
        sidecar,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnd_store::FlowStore;
    use std::io::Cursor;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static CASE: AtomicU64 = AtomicU64::new(0);

    fn tmp_store_path() -> PathBuf {
        std::env::temp_dir().join(format!(
            "cnd_ingest_{}_{}.cnds",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn ingest(csv: &str, opts: &IngestOptions) -> (Result<IngestReport, DatasetError>, PathBuf) {
        let path = tmp_store_path();
        let r = ingest_csv_from(Cursor::new(csv.to_string()), &path, opts);
        (r, path)
    }

    #[test]
    fn clean_csv_round_trips_through_store() {
        let csv = "\u{feff}f1,f2,label\r\n1.5,2.5,benign\r\n3.0,4.0,dos\r\n5.0,6.0,dos,\r\n";
        let (r, path) = ingest(csv, &IngestOptions::default());
        let report = r.unwrap();
        assert_eq!(report.rows_written, 3);
        assert_eq!(report.rows_quarantined, 0);
        assert_eq!(report.class_names, vec!["normal", "dos"]);
        assert!(report.sidecar.is_none());

        let store = FlowStore::open(&path).unwrap();
        assert_eq!(store.len(), 3);
        let chunk = store.read_rows(0, 3).unwrap();
        assert_eq!(chunk.rows.row(0), &[1.5, 2.5]);
        assert_eq!(chunk.rows.row(2), &[5.0, 6.0]);
        assert_eq!(chunk.labels, vec![0, 1, 1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ingested_labels_match_in_memory_loader() {
        let csv = "1,2,normal\n3,4,a_x\n5,6,b_y\n7,8,a_x\n";
        let (r, path) = ingest(
            csv,
            &IngestOptions {
                has_header: false,
                ..IngestOptions::default()
            },
        );
        let report = r.unwrap();
        let in_memory =
            crate::loader::read_csv_from(Cursor::new(csv.to_string()), false, "m".into()).unwrap();
        assert_eq!(report.class_names, in_memory.class_names);
        let chunk = FlowStore::open(&path).unwrap().read_rows(0, 4).unwrap();
        let stored: Vec<usize> = chunk.labels.iter().map(|&l| l as usize).collect();
        assert_eq!(stored, in_memory.class);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_rows_are_quarantined_with_line_numbers() {
        let csv = "f1,f2,label\n\
                   1.0,2.0,benign\n\
                   oops,2.0,dos\n\
                   3.0,4.0\n\
                   5.0,NaN,dos\n\
                   6.0,7.0,8.0,dos\n\
                   9.0,10.0,scan\n";
        let (r, path) = ingest(csv, &IngestOptions::default());
        let report = r.unwrap();
        assert_eq!(report.rows_written, 2);
        assert_eq!(report.rows_quarantined, 4);
        let lines: Vec<usize> = report.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6]);
        assert!(report.quarantined[0].reason.contains("non-numeric"));
        assert!(report.quarantined[2].reason.contains("non-finite"));
        assert!(report.quarantined[3].reason.contains("expected 2 features"));

        let sidecar = report.sidecar.as_ref().expect("sidecar written");
        let text = std::fs::read_to_string(sidecar).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("line 3:"));

        assert_eq!(FlowStore::open(&path).unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar);
    }

    #[test]
    fn all_bad_rows_is_an_error_and_leaves_no_store() {
        let (r, path) = ingest("f1,f2,label\nx,y,z\n", &IngestOptions::default());
        assert!(matches!(r, Err(DatasetError::Parse { .. })));
        assert!(!path.exists(), "no store file for an all-bad input");
    }

    #[test]
    fn f32_ingest_narrows_features() {
        let (r, path) = ingest(
            "0.1,0.2,benign\n",
            &IngestOptions {
                has_header: false,
                dtype: DType::F32,
            },
        );
        r.unwrap();
        let chunk = FlowStore::open(&path).unwrap().read_rows(0, 1).unwrap();
        assert_eq!(chunk.rows.row(0), &[f64::from(0.1f32), f64::from(0.2f32)]);
        let _ = std::fs::remove_file(&path);
    }
}
