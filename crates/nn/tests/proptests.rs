//! Property-based tests for the neural-network substrate.

use cnd_linalg::Matrix;
use cnd_nn::{loss, Activation, Adam, Optimizer, Sequential, Sgd};
use proptest::prelude::*;
use rand::SeedableRng;

fn batch(max_rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows).prop_flat_map(move |r| {
        prop::collection::vec(-2.0..2.0f64, r * cols)
            .prop_map(move |data| Matrix::from_vec(r, cols, data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_is_deterministic(x in batch(10, 5), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::mlp(&[5, 7, 3], Activation::Tanh, &mut rng);
        let a = net.forward(&x);
        let b = net.forward_inference(&x);
        prop_assert!(a.max_abs_diff(&b) < 1e-15);
        prop_assert!(a.is_finite());
    }

    #[test]
    fn mse_is_nonnegative_and_zero_iff_equal(x in batch(8, 4)) {
        let (l, g) = loss::mse(&x, &x).unwrap();
        prop_assert_eq!(l, 0.0);
        prop_assert!(g.iter().all(|&v| v == 0.0));
        let shifted = x.map(|v| v + 1.0);
        let (l2, _) = loss::mse(&shifted, &x).unwrap();
        prop_assert!((l2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triplet_loss_nonnegative(x in batch(8, 3), seed in 0u64..100) {
        let labels: Vec<u8> = (0..x.rows()).map(|i| (i % 2) as u8).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (l, g) = loss::triplet_margin(&x, &labels, 1.0, &mut rng).unwrap();
        prop_assert!(l >= 0.0);
        prop_assert!(g.is_finite());
    }

    #[test]
    fn one_adam_step_reduces_quadratic(start in -5.0..5.0f64, lr in 0.001..0.2f64) {
        let mut opt = Adam::new(lr);
        let mut p = vec![start];
        let before = (p[0] - 1.0) * (p[0] - 1.0);
        // The first bias-corrected Adam step has magnitude ~lr regardless
        // of the gradient, so it only helps when we start further than
        // lr/2 from the optimum.
        if (p[0] - 1.0).abs() > lr {
            let g = 2.0 * (p[0] - 1.0);
            opt.step(0, &mut p, &[g]);
            let after = (p[0] - 1.0) * (p[0] - 1.0);
            prop_assert!(after < before, "step increased loss: {before} -> {after}");
        }
    }

    #[test]
    fn sgd_step_moves_against_gradient(g in prop::collection::vec(-3.0..3.0f64, 1..8)) {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0; g.len()];
        opt.step(0, &mut p, &g);
        for (pi, gi) in p.iter().zip(&g) {
            prop_assert!(pi * gi <= 0.0, "parameter moved with the gradient");
        }
    }

    #[test]
    fn backward_gradient_linear_in_upstream(x in batch(6, 4), seed in 0u64..100) {
        // backward(2g) == 2 * backward(g) for fixed caches.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::mlp(&[4, 5, 2], Activation::Tanh, &mut rng);
        net.zero_grad();
        let y = net.forward(&x);
        let g = y.map(|v| v * 0.3 + 0.1);
        let d1 = net.backward(&g).unwrap();
        net.zero_grad();
        net.forward(&x);
        let d2 = net.backward(&g.scale(2.0)).unwrap();
        prop_assert!(d2.max_abs_diff(&d1.scale(2.0)) < 1e-9);
    }

    #[test]
    fn param_count_matches_widths(w1 in 1usize..10, w2 in 1usize..10, w3 in 1usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let net = Sequential::mlp(&[w1, w2, w3], Activation::Relu, &mut rng);
        prop_assert_eq!(net.param_count(), w1 * w2 + w2 + w2 * w3 + w3);
    }
}
