//! End-to-end finite-difference gradient verification for `Sequential`.
//!
//! These tests perturb individual weights and biases of small networks and
//! compare the loss change against the analytic gradients accumulated by
//! `backward` — the strongest guarantee we can give that the hand-derived
//! backprop used by the CFE is correct.

use cnd_linalg::Matrix;
use cnd_nn::{loss, Activation, Sequential};
use rand::SeedableRng;

/// Computes the MSE autoencoder-style loss for the current parameters.
fn net_loss(net: &Sequential, x: &Matrix, target: &Matrix) -> f64 {
    let y = net.forward_inference(x);
    loss::mse(&y, target).expect("shapes agree").0
}

/// Checks every weight and bias of `net` against finite differences.
fn check_gradients(mut net: Sequential, x: &Matrix, target: &Matrix, tol: f64) {
    net.zero_grad();
    let y = net.forward(x);
    let (_, d) = loss::mse(&y, target).expect("shapes agree");
    net.backward(&d).expect("backward succeeds");

    // Collect analytic grads per linear layer.
    let analytic: Vec<(Matrix, Vec<f64>)> = net
        .linear_layers()
        .map(|l| (l.grad_weights().clone(), l.grad_bias().to_vec()))
        .collect();

    let eps = 1e-6;
    // Re-build mutated networks by cloning and perturbing one parameter.
    let mut layer_idx = 0;
    for (li, (gw, gb)) in analytic.iter().enumerate() {
        let (rows, cols) = gw.shape();
        for r in 0..rows {
            for c in 0..cols {
                let fd = {
                    let mut plus = net.clone();
                    let mut minus = net.clone();
                    perturb_weight(&mut plus, li, r, c, eps);
                    perturb_weight(&mut minus, li, r, c, -eps);
                    (net_loss(&plus, x, target) - net_loss(&minus, x, target)) / (2.0 * eps)
                };
                let an = gw[(r, c)];
                assert!(
                    (fd - an).abs() < tol * (1.0 + an.abs()),
                    "layer {li} weight ({r},{c}): fd={fd}, analytic={an}"
                );
            }
        }
        for (bi, &an) in gb.iter().enumerate() {
            let fd = {
                let mut plus = net.clone();
                let mut minus = net.clone();
                perturb_bias(&mut plus, li, bi, eps);
                perturb_bias(&mut minus, li, bi, -eps);
                (net_loss(&plus, x, target) - net_loss(&minus, x, target)) / (2.0 * eps)
            };
            assert!(
                (fd - an).abs() < tol * (1.0 + an.abs()),
                "layer {li} bias {bi}: fd={fd}, analytic={an}"
            );
        }
        layer_idx += 1;
    }
    assert!(layer_idx > 0, "network had no linear layers");
}

fn perturb_weight(net: &mut Sequential, linear_idx: usize, r: usize, c: usize, delta: f64) {
    // Rebuild via copy: walk linear layers mutably through a fresh clone.
    let mut rebuilt = Sequential::new();
    std::mem::swap(net, &mut rebuilt);
    // Sequential doesn't expose mutable linear iteration publicly, so we
    // reconstruct through its clone-with-perturbation path:
    let mut layers: Vec<cnd_nn::Linear> = rebuilt.linear_layers().cloned().collect();
    for (count, l) in layers.iter_mut().enumerate() {
        if count == linear_idx {
            l.weights_mut()[(r, c)] += delta;
        }
    }
    *net = rebuild_like(&rebuilt, layers);
}

fn perturb_bias(net: &mut Sequential, linear_idx: usize, b: usize, delta: f64) {
    let mut rebuilt = Sequential::new();
    std::mem::swap(net, &mut rebuilt);
    let mut layers: Vec<cnd_nn::Linear> = rebuilt.linear_layers().cloned().collect();
    for (count, l) in layers.iter_mut().enumerate() {
        if count == linear_idx {
            l.bias_mut()[b] += delta;
        }
    }
    *net = rebuild_like(&rebuilt, layers);
}

/// Rebuilds a network with the same activation structure but replacement
/// linear layers. Assumes the alternating structure produced by
/// `Sequential::mlp` (Linear, Act, Linear, ..., Linear).
fn rebuild_like(original: &Sequential, mut linears: Vec<cnd_nn::Linear>) -> Sequential {
    let mut out = Sequential::new();
    let n = original.len();
    linears.reverse();
    for i in 0..n {
        if i % 2 == 0 {
            out.push_layer(linears.pop().expect("linear available"));
        } else {
            out.push_activation(Activation::Tanh);
        }
    }
    out
}

#[test]
fn gradients_two_layer_tanh() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let net = Sequential::mlp(&[3, 4, 3], Activation::Tanh, &mut rng);
    let x = Matrix::from_fn(5, 3, |i, j| ((i * 2 + j) as f64 * 0.37).sin());
    let target = Matrix::from_fn(5, 3, |i, j| ((i + j) as f64 * 0.53).cos());
    check_gradients(net, &x, &target, 1e-4);
}

#[test]
fn gradients_deeper_network() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
    let net = Sequential::mlp(&[4, 6, 2, 6, 4], Activation::Tanh, &mut rng);
    let x = Matrix::from_fn(3, 4, |i, j| ((i * 3 + j) as f64 * 0.21).sin());
    let target = x.clone();
    check_gradients(net, &x, &target, 1e-4);
}

#[test]
fn composite_loss_gradients_sum_at_interface() {
    // Verify that pushing the summed gradient of two losses through the
    // encoder equals the sum of pushing them separately — the property the
    // CFE training loop relies on.
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let enc = Sequential::mlp(&[4, 5, 3], Activation::Tanh, &mut rng);
    let x = Matrix::from_fn(6, 4, |i, j| ((i + 2 * j) as f64 * 0.3).sin());

    // Two artificial gradient streams at the embedding.
    let mut e1 = enc.clone();
    e1.zero_grad();
    let h = e1.forward(&x);
    let g1 = h.map(|v| 0.5 * v);
    let g2 = h.map(|v| v * v - 0.1);

    // Combined pass.
    let combined = g1.add(&g2).unwrap();
    e1.backward(&combined).unwrap();
    let combined_grads: Vec<Matrix> = e1
        .linear_layers()
        .map(|l| l.grad_weights().clone())
        .collect();

    // Separate passes accumulated.
    let mut e2 = enc.clone();
    e2.zero_grad();
    e2.forward(&x);
    e2.backward(&g1).unwrap();
    // forward again to refresh caches (same input), then second stream.
    e2.forward(&x);
    e2.backward(&g2).unwrap();
    let separate_grads: Vec<Matrix> = e2
        .linear_layers()
        .map(|l| l.grad_weights().clone())
        .collect();

    for (a, b) in combined_grads.iter().zip(&separate_grads) {
        assert!(a.max_abs_diff(b) < 1e-10);
    }
}
