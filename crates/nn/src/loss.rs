//! Loss functions returning `(value, gradient)` pairs.
//!
//! Each function computes both the scalar loss and its gradient with
//! respect to the first argument, ready to feed into
//! [`crate::Sequential::backward`].

use cnd_linalg::{vector, Matrix};
use rand::Rng;

use crate::NnError;

/// Mean-squared error over all elements of a batch:
/// `L = mean((pred - target)²)`, gradient `2 (pred - target) / N`.
///
/// This is the paper's reconstruction loss `L_R` and the building block of
/// the latent continual-learning loss `L_CL`.
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] on differing shapes and
/// [`NnError::EmptyBatch`] for empty input.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// let p = Matrix::from_rows(&[vec![1.0, 2.0]])?;
/// let t = Matrix::from_rows(&[vec![0.0, 0.0]])?;
/// let (l, g) = cnd_nn::loss::mse(&p, &t)?;
/// assert!((l - 2.5).abs() < 1e-12);
/// assert_eq!(g.row(0), &[1.0, 2.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mse(pred: &Matrix, target: &Matrix) -> Result<(f64, Matrix), NnError> {
    if pred.shape() != target.shape() {
        return Err(NnError::BatchMismatch {
            left: pred.shape(),
            right: target.shape(),
        });
    }
    if pred.is_empty() {
        return Err(NnError::EmptyBatch);
    }
    let diff = pred.sub(target)?;
    let n = pred.len() as f64;
    let loss = diff.frobenius_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// A sampled (anchor, positive, negative) index triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triplet {
    /// Anchor row index.
    pub anchor: usize,
    /// Positive row index (same pseudo-label as the anchor).
    pub positive: usize,
    /// Negative row index (different pseudo-label).
    pub negative: usize,
}

/// Samples one random triplet per eligible anchor.
///
/// An anchor is eligible when at least one other sample shares its label
/// and at least one sample has a different label. Returns an empty vector
/// when the batch contains fewer than two classes.
pub fn sample_triplets<R: Rng + ?Sized>(labels: &[u8], rng: &mut R) -> Vec<Triplet> {
    let mut by_class: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (i, &l) in labels.iter().enumerate() {
        by_class[usize::from(l != 0)].push(i);
    }
    if by_class[0].is_empty() || by_class[1].is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(labels.len());
    for (anchor, &l) in labels.iter().enumerate() {
        let same = &by_class[usize::from(l != 0)];
        let other = &by_class[usize::from(l == 0)];
        if same.len() < 2 {
            continue;
        }
        // Rejection-sample a positive different from the anchor.
        let positive = loop {
            let c = same[rng.gen_range(0..same.len())];
            if c != anchor {
                break c;
            }
        };
        let negative = other[rng.gen_range(0..other.len())];
        out.push(Triplet {
            anchor,
            positive,
            negative,
        });
    }
    out
}

/// Squared-Euclidean triplet margin loss (FaceNet form, the paper's
/// cluster-separation loss `L_CS`):
///
/// `L = mean over triplets of max(‖a−p‖² − ‖a−n‖² + margin, 0)`
///
/// Returns the mean loss and the gradient w.r.t. the embedding matrix.
/// Triplets whose margin is already satisfied contribute zero loss and
/// zero gradient.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] when `labels.len() !=
/// embeddings.rows()` and [`NnError::EmptyBatch`] for an empty batch.
/// A batch with a single class yields loss `0` and a zero gradient
/// (no triplets can be formed) — not an error, since the pseudo-labeller
/// can legitimately produce one class.
pub fn triplet_margin<R: Rng + ?Sized>(
    embeddings: &Matrix,
    labels: &[u8],
    margin: f64,
    rng: &mut R,
) -> Result<(f64, Matrix), NnError> {
    if embeddings.is_empty() {
        return Err(NnError::EmptyBatch);
    }
    if labels.len() != embeddings.rows() {
        return Err(NnError::LabelMismatch {
            batch: embeddings.rows(),
            labels: labels.len(),
        });
    }
    let triplets = sample_triplets(labels, rng);
    triplet_margin_with(embeddings, &triplets, margin)
}

/// Triplet margin loss for an explicit triplet set (deterministic variant
/// used by tests and gradient checks).
///
/// # Errors
///
/// Returns [`NnError::EmptyBatch`] for an empty embedding matrix.
///
/// # Panics
///
/// Panics if a triplet index is out of bounds.
pub fn triplet_margin_with(
    embeddings: &Matrix,
    triplets: &[Triplet],
    margin: f64,
) -> Result<(f64, Matrix), NnError> {
    if embeddings.is_empty() {
        return Err(NnError::EmptyBatch);
    }
    let mut grad = Matrix::zeros(embeddings.rows(), embeddings.cols());
    if triplets.is_empty() {
        return Ok((0.0, grad));
    }
    let mut total = 0.0;
    let scale = 1.0 / triplets.len() as f64;
    for t in triplets {
        let a = embeddings.row(t.anchor);
        let p = embeddings.row(t.positive);
        let n = embeddings.row(t.negative);
        let d_ap = vector::sq_distance(a, p);
        let d_an = vector::sq_distance(a, n);
        let l = d_ap - d_an + margin;
        if l <= 0.0 {
            continue;
        }
        total += l;
        // dL/da = 2(n − p); dL/dp = −2(a − p); dL/dn = 2(a − n).
        for j in 0..embeddings.cols() {
            grad[(t.anchor, j)] += scale * 2.0 * (n[j] - p[j]);
            grad[(t.positive, j)] += scale * (-2.0) * (a[j] - p[j]);
            grad[(t.negative, j)] += scale * 2.0 * (a[j] - n[j]);
        }
    }
    Ok((total * scale, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mse_zero_for_identical() {
        let x = Matrix::filled(3, 2, 1.5);
        let (l, g) = mse(&x, &x).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(g, Matrix::zeros(3, 2));
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[vec![2.0, 0.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let (l, g) = mse(&p, &t).unwrap();
        assert_eq!(l, 2.0);
        assert_eq!(g.row(0), &[2.0, 0.0]);
    }

    #[test]
    fn mse_rejects_mismatch_and_empty() {
        assert!(mse(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1)).is_err());
        assert!(matches!(
            mse(&Matrix::zeros(0, 0), &Matrix::zeros(0, 0)),
            Err(NnError::EmptyBatch)
        ));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Matrix::from_fn(3, 4, |i, j| (i as f64 - j as f64) * 0.3);
        let t = Matrix::from_fn(3, 4, |i, j| ((i + j) % 2) as f64);
        let (_, g) = mse(&p, &t).unwrap();
        let eps = 1e-6;
        for i in 0..3 {
            for j in 0..4 {
                let mut pp = p.clone();
                pp[(i, j)] += eps;
                let (lp, _) = mse(&pp, &t).unwrap();
                let mut pm = p.clone();
                pm[(i, j)] -= eps;
                let (lm, _) = mse(&pm, &t).unwrap();
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - g[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sample_triplets_single_class_is_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(sample_triplets(&[0, 0, 0], &mut rng).is_empty());
        assert!(sample_triplets(&[1, 1], &mut rng).is_empty());
    }

    #[test]
    fn sample_triplets_respects_classes() {
        let labels = [0, 0, 1, 1, 0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for t in sample_triplets(&labels, &mut rng) {
            assert_eq!(labels[t.anchor], labels[t.positive]);
            assert_ne!(labels[t.anchor], labels[t.negative]);
            assert_ne!(t.anchor, t.positive);
        }
    }

    #[test]
    fn triplet_zero_when_margin_satisfied() {
        // a = p, n far away: d_ap - d_an + margin < 0.
        let e = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0], vec![100.0, 0.0]]).unwrap();
        let t = [Triplet {
            anchor: 0,
            positive: 1,
            negative: 2,
        }];
        let (l, g) = triplet_margin_with(&e, &t, 1.0).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(g, Matrix::zeros(3, 2));
    }

    #[test]
    fn triplet_known_violation() {
        // a=(0,0), p=(1,0), n=(1,0): d_ap = 1, d_an = 1, loss = margin.
        let e = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let t = [Triplet {
            anchor: 0,
            positive: 1,
            negative: 2,
        }];
        let (l, _) = triplet_margin_with(&e, &t, 2.0).unwrap();
        assert!((l - 2.0).abs() < 1e-12);
    }

    #[test]
    fn triplet_gradient_matches_finite_difference() {
        let e = Matrix::from_rows(&[
            vec![0.1, 0.2],
            vec![0.4, -0.3],
            vec![0.2, 0.1],
            vec![-0.5, 0.3],
        ])
        .unwrap();
        let trips = [
            Triplet {
                anchor: 0,
                positive: 1,
                negative: 2,
            },
            Triplet {
                anchor: 3,
                positive: 2,
                negative: 1,
            },
        ];
        let margin = 1.0;
        let (_, g) = triplet_margin_with(&e, &trips, margin).unwrap();
        let eps = 1e-6;
        for i in 0..e.rows() {
            for j in 0..e.cols() {
                let mut ep = e.clone();
                ep[(i, j)] += eps;
                let (lp, _) = triplet_margin_with(&ep, &trips, margin).unwrap();
                let mut em = e.clone();
                em[(i, j)] -= eps;
                let (lm, _) = triplet_margin_with(&em, &trips, margin).unwrap();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - g[(i, j)]).abs() < 1e-5,
                    "({i},{j}): fd={fd}, analytic={}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn triplet_label_mismatch() {
        let e = Matrix::zeros(3, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(matches!(
            triplet_margin(&e, &[0, 1], 1.0, &mut rng),
            Err(NnError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn triplet_single_class_returns_zero() {
        let e = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (l, g) = triplet_margin(&e, &[0, 0, 0, 0], 1.0, &mut rng).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(g, Matrix::zeros(4, 2));
    }
}
