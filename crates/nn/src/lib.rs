//! # cnd-nn
//!
//! A from-scratch neural-network substrate for the CND-IDS reproduction.
//!
//! The paper's continual feature extractor (CFE) is a 4-layer MLP
//! autoencoder trained with a composite loss whose three terms all inject
//! gradient at the encoder output: the reconstruction loss flows back
//! through the decoder, while the cluster-separation (triplet) loss and the
//! latent continual-learning loss act on the embedding directly. Rather
//! than pulling in an autograd engine, this crate provides a transparent
//! [`Sequential`] network with *cached forward / explicit backward*
//! passes: `backward` takes the loss gradient w.r.t. the network output and
//! returns the gradient w.r.t. the input, accumulating parameter gradients
//! along the way. Multiple gradient streams are simply summed before being
//! pushed through a sub-network — exactly what the CFE needs.
//!
//! Contents:
//!
//! * [`Linear`] — fully connected layer `y = xW + b`.
//! * [`Activation`] — ReLU / LeakyReLU / Tanh / Sigmoid / Identity.
//! * [`Sequential`] — layer stack with `forward` / `backward` /
//!   `zero_grad` / optimizer hookup.
//! * [`Adam`], [`Sgd`] — optimizers (paper uses Adam, lr 0.001).
//! * [`loss`] — MSE and squared-Euclidean triplet-margin losses, each
//!   returning `(value, gradient)`.
//!
//! All gradients are verified against finite differences in the test
//! suite (`tests/grad_check.rs`).
//!
//! # Example
//!
//! ```
//! use cnd_linalg::Matrix;
//! use cnd_nn::{Activation, Sequential, Adam, loss};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Tiny autoencoder: 4 -> 2 -> 4.
//! let mut net = Sequential::new();
//! net.push_linear(4, 2, &mut rng);
//! net.push_activation(Activation::Tanh);
//! net.push_linear(2, 4, &mut rng);
//!
//! let x = Matrix::from_fn(8, 4, |i, j| ((i + j) % 3) as f64 * 0.5);
//! let mut opt = Adam::new(0.01);
//! for _ in 0..50 {
//!     net.zero_grad();
//!     let y = net.forward(&x);
//!     let (l, d) = loss::mse(&y, &x)?;
//!     let _ = l;
//!     net.backward(&d)?;
//!     net.apply_gradients(&mut opt);
//! }
//! # Ok::<(), cnd_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod error;
mod linear;
mod optim;
mod sequential;
mod sequential_f32;

pub mod init;
pub mod loss;

pub use activation::Activation;
pub use error::NnError;
pub use linear::Linear;
pub use optim::{Adam, Optimizer, Sgd};
pub use sequential::{Layer, Sequential};
pub use sequential_f32::SequentialF32;
