use cnd_linalg::{Matrix, MatrixRef};
use rand::Rng;

use crate::{init, NnError, Optimizer};

/// A fully connected layer computing `y = xW + b` over a batch.
///
/// Weights have shape `(fan_in, fan_out)`; inputs are one sample per row.
/// The layer caches its input during [`forward`](Linear::forward) so that
/// [`backward`](Linear::backward) can compute parameter gradients.
/// Gradients *accumulate* across backward calls until
/// [`zero_grad`](Linear::zero_grad) — this is what lets the CFE sum
/// gradient contributions from several losses.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    w: Matrix,
    b: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero biases.
    pub fn new<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        Linear {
            w: init::xavier_uniform(fan_in, fan_out, rng),
            b: vec![0.0; fan_out],
            grad_w: Matrix::zeros(fan_in, fan_out),
            grad_b: vec![0.0; fan_out],
            cached_input: None,
        }
    }

    /// Creates a layer from explicit parameters (used by tests and
    /// model-snapshot restoration).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != w.cols()`.
    pub fn from_parts(w: Matrix, b: Vec<f64>) -> Self {
        assert_eq!(b.len(), w.cols(), "bias length must equal fan_out");
        let (fan_in, fan_out) = w.shape();
        Linear {
            w,
            b,
            grad_w: Matrix::zeros(fan_in, fan_out),
            grad_b: vec![0.0; fan_out],
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Borrow of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Borrow of the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// Mutable borrow of the weight matrix (for tests / perturbation).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Mutable borrow of the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass over a batch, caching the input for backward.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != fan_in`.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix, NnError> {
        let y = x.matmul(&self.w)?.add_row_broadcast(&self.b)?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    /// Forward pass without caching — used for inference.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != fan_in`.
    pub fn forward_inference(&self, x: &Matrix) -> Result<Matrix, NnError> {
        Ok(x.matmul(&self.w)?.add_row_broadcast(&self.b)?)
    }

    /// Forward pass over a borrowed row window — the batch-parallel
    /// inference path hands row chunks straight to the GEMM without
    /// copying them into an owned `Matrix` first.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != fan_in`.
    pub fn forward_inference_view(&self, x: MatrixRef<'_, f64>) -> Result<Matrix, NnError> {
        Ok(x.matmul(&self.w.view())?.add_row_broadcast(&self.b)?)
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dL/dx`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardPass`] if called before `forward`, or a
    /// shape error if `d_out` does not match the cached batch.
    pub fn backward(&mut self, d_out: &Matrix) -> Result<Matrix, NnError> {
        let x = self.cached_input.as_ref().ok_or(NnError::NoForwardPass)?;
        if d_out.rows() != x.rows() || d_out.cols() != self.w.cols() {
            return Err(NnError::BatchMismatch {
                left: d_out.shape(),
                right: (x.rows(), self.w.cols()),
            });
        }
        // Transposed views feed the packed GEMM directly; no clone of
        // xᵀ / Wᵀ is materialized per backward step.
        let dw = x.view().t().matmul(&d_out.view())?;
        self.grad_w = self.grad_w.add(&dw)?;
        for (gb, s) in self.grad_b.iter_mut().zip(d_out.col_sums()) {
            *gb += s;
        }
        let dx = d_out.view().matmul(&self.w.view().t())?;
        Ok(dx)
    }

    /// Clears accumulated gradients and the cached input.
    pub fn zero_grad(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b = vec![0.0; self.b.len()];
        self.cached_input = None;
    }

    /// Accumulated weight gradient (for tests).
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_w
    }

    /// Accumulated bias gradient (for tests).
    pub fn grad_bias(&self) -> &[f64] {
        &self.grad_b
    }

    /// Applies one optimizer step to the weights and biases.
    ///
    /// `tensor_id` must be unique per parameter tensor across the whole
    /// model so the optimizer can associate its per-tensor state; the
    /// layer uses `tensor_id` for weights and `tensor_id + 1` for biases.
    pub fn apply_gradients<O: Optimizer + ?Sized>(&mut self, opt: &mut O, tensor_id: usize) {
        opt.step(tensor_id, self.w.as_mut_slice(), self.grad_w.as_slice());
        opt.step(tensor_id + 1, &mut self.b, &self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer_2x3() -> Linear {
        let w = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, -1.0]]).unwrap();
        Linear::from_parts(w, vec![0.5, -0.5, 0.0])
    }

    #[test]
    fn forward_known_values() {
        let mut l = layer_2x3();
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.row(0), &[1.5, 1.5, 0.0]);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Matrix::from_fn(5, 4, |i, j| (i + j) as f64 * 0.1);
        let a = l.forward(&x).unwrap();
        let b = l.forward_inference(&x).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = layer_2x3();
        let d = Matrix::zeros(1, 3);
        assert_eq!(l.backward(&d), Err(NnError::NoForwardPass));
    }

    #[test]
    fn backward_shapes_and_values() {
        let mut l = layer_2x3();
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        l.forward(&x).unwrap();
        let d_out = Matrix::filled(2, 3, 1.0);
        let dx = l.backward(&d_out).unwrap();
        assert_eq!(dx.shape(), (2, 2));
        // dx = d_out * W^T; row i = col sums of W.
        assert_eq!(dx.row(0), &[3.0, 0.0]);
        // dW = x^T d_out: entry (0,0) = 1+3 = 4.
        assert_eq!(l.grad_weights()[(0, 0)], 4.0);
        // db = column sums of d_out = [2,2,2].
        assert_eq!(l.grad_bias(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = layer_2x3();
        let x = Matrix::filled(1, 2, 1.0);
        l.forward(&x).unwrap();
        let d = Matrix::filled(1, 3, 1.0);
        l.backward(&d).unwrap();
        l.forward(&x).unwrap();
        l.backward(&d).unwrap();
        assert_eq!(l.grad_bias(), &[2.0, 2.0, 2.0]);
        l.zero_grad();
        assert_eq!(l.grad_bias(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_rejects_bad_shape() {
        let mut l = layer_2x3();
        let x = Matrix::filled(2, 2, 1.0);
        l.forward(&x).unwrap();
        let d = Matrix::zeros(3, 3);
        assert!(matches!(l.backward(&d), Err(NnError::BatchMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_parts_validates_bias() {
        Linear::from_parts(Matrix::zeros(2, 3), vec![0.0; 2]);
    }

    #[test]
    fn param_count() {
        assert_eq!(layer_2x3().param_count(), 9);
    }
}
