use cnd_linalg::MatrixF32;

use crate::{Activation, Layer, NnError, Sequential};

/// A frozen single-precision copy of a trained [`Sequential`] network,
/// supporting inference only.
///
/// The quantized serve path trades a bounded amount of score precision
/// for half the memory traffic per weight: parameters are rounded to the
/// nearest `f32` once at construction, and every product runs through
/// the same packed GEMM kernel as the f64 path, instantiated for `f32`.
/// There is no backward pass, no gradient state, and no way to mutate
/// the parameters — retrain in f64 and re-quantize instead.
///
/// # Example
///
/// ```
/// use cnd_linalg::{Matrix, MatrixF32};
/// use cnd_nn::{Activation, Sequential, SequentialF32};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = Sequential::mlp(&[4, 3, 4], Activation::Relu, &mut rng);
/// let twin = SequentialF32::from_f64(&net);
/// let x = Matrix::from_fn(2, 4, |i, j| (i + j) as f64 * 0.25);
/// let y32 = twin.forward_inference(&MatrixF32::from_f64(&x))?;
/// let y64 = net.forward_inference(&x);
/// assert!(y32.to_f64().max_abs_diff(&y64) < 1e-4);
/// # Ok::<(), cnd_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SequentialF32 {
    layers: Vec<LayerF32>,
}

/// One layer of the quantized network. Linear layers store their own
/// `f32` parameter copies; activations evaluate natively in `f32` via
/// [`Activation::apply_f32`].
#[derive(Debug, Clone)]
enum LayerF32 {
    Linear { w: MatrixF32, b: Vec<f32> },
    Activation(Activation),
}

impl SequentialF32 {
    /// Quantizes every parameter of `net` to `f32`.
    ///
    /// Rounding is the standard round-to-nearest-even `as` cast, applied
    /// element-wise; the architecture (layer order, widths, activation
    /// choices) is preserved exactly.
    pub fn from_f64(net: &Sequential) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Linear(lin) => LayerF32::Linear {
                    w: MatrixF32::from_f64(lin.weights()),
                    b: lin.bias().iter().map(|&v| v as f32).collect(),
                },
                Layer::Activation { act, .. } => LayerF32::Activation(*act),
            })
            .collect();
        SequentialF32 { layers }
    }

    /// Number of layers (linear and activation combined).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass over a batch (one sample per row).
    ///
    /// Runs serially: the batch sizes on the serve path are small and
    /// the GEMM kernel is where the cycles go, so there is no row-chunk
    /// fan-out here (and therefore no parallel/serial equivalence to
    /// maintain for this path — f32 carries a tolerance contract, not a
    /// bit-identity one).
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols()` does not match the first layer's
    /// fan-in, or the network was built with inconsistent widths.
    pub fn forward_inference(&self, x: &MatrixF32) -> Result<MatrixF32, NnError> {
        let mut h = x.clone();
        for layer in &self.layers {
            h = match layer {
                LayerF32::Linear { w, b } => h.matmul(w)?.add_row_broadcast(b)?,
                LayerF32::Activation(act) => {
                    let a = *act;
                    h.map_inplace(move |v| a.apply_f32(v));
                    h
                }
            };
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnd_linalg::Matrix;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(23)
    }

    #[test]
    fn quantized_twin_tracks_f64_network() {
        let mut r = rng();
        let net = Sequential::mlp(&[8, 16, 4, 16, 8], Activation::LeakyRelu(0.01), &mut r);
        let twin = SequentialF32::from_f64(&net);
        assert_eq!(twin.len(), net.len());
        let x = Matrix::from_fn(32, 8, |i, j| ((i * 7 + j * 3) as f64).sin());
        let y64 = net.forward_inference(&x);
        let y32 = twin.forward_inference(&MatrixF32::from_f64(&x)).unwrap();
        assert_eq!(y32.shape(), y64.shape());
        let diff = y32.to_f64().max_abs_diff(&y64);
        assert!(diff < 1e-4, "f32 twin drifted too far: {diff}");
    }

    #[test]
    fn exact_on_power_of_two_parameters() {
        // Weights/inputs exactly representable in f32 and products small
        // enough to be exact: the twin must agree bit-for-bit (after
        // widening) with the f64 network.
        let w1 = Matrix::from_fn(3, 2, |i, j| (i as f64) * 0.5 - (j as f64) * 0.25);
        let w2 = Matrix::from_fn(2, 3, |i, j| (j as f64) * 0.125 - (i as f64));
        let mut net = Sequential::new();
        net.push_layer(crate::Linear::from_parts(w1, vec![0.5, -0.5]));
        net.push_activation(Activation::Relu);
        net.push_layer(crate::Linear::from_parts(w2, vec![0.0, 1.0, -1.0]));
        let twin = SequentialF32::from_f64(&net);
        let x = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let y64 = net.forward_inference(&x);
        let y32 = twin.forward_inference(&MatrixF32::from_f64(&x)).unwrap();
        assert_eq!(y32.to_f64(), y64);
    }

    #[test]
    fn empty_network_is_identity() {
        let twin = SequentialF32::from_f64(&Sequential::new());
        assert!(twin.is_empty());
        let x = MatrixF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(twin.forward_inference(&x).unwrap(), x);
    }

    #[test]
    fn width_mismatch_errors() {
        let mut r = rng();
        let net = Sequential::mlp(&[4, 2], Activation::Identity, &mut r);
        let twin = SequentialF32::from_f64(&net);
        assert!(twin.forward_inference(&MatrixF32::zeros(2, 5)).is_err());
    }
}
