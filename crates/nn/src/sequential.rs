use cnd_linalg::{Matrix, MatrixRef};
use rand::Rng;

use crate::{Activation, Linear, NnError, Optimizer};

/// Fixed row-chunk size for batch-parallel inference. Boundaries never
/// depend on the pool size, and every per-row output is computed by the
/// same serial kernel sequence, so batched parallel inference is
/// bit-identical to the serial pass.
const FORWARD_CHUNK_ROWS: usize = 64;

/// Minimum batch rows before inference fans out over the pool.
const PAR_FORWARD_MIN_ROWS: usize = 128;

/// One layer of a [`Sequential`] network.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Fully connected layer.
    Linear(Linear),
    /// Elementwise activation; caches its pre-activation input between
    /// forward and backward.
    Activation {
        /// The activation function.
        act: Activation,
        /// Cached pre-activation input from the last forward pass.
        cached_input: Option<Matrix>,
    },
}

/// A feed-forward stack of layers with explicit backward passes.
///
/// `Sequential` is the building block for the CFE encoder and decoder:
/// `forward` caches activations, `backward` consumes an output gradient
/// and returns the input gradient while accumulating parameter gradients,
/// and `apply_gradients` hands the accumulated gradients to an optimizer.
///
/// Because gradients accumulate until [`zero_grad`](Sequential::zero_grad),
/// a training step may run several loss functions, sum their gradients at
/// any interface, and push each stream through the network.
///
/// # Example
///
/// ```
/// use cnd_linalg::Matrix;
/// use cnd_nn::{Activation, Sequential};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push_linear(3, 2, &mut rng);
/// net.push_activation(Activation::Relu);
/// let y = net.forward(&Matrix::zeros(4, 3));
/// assert_eq!(y.shape(), (4, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Builds an MLP from a list of layer widths, inserting `act` between
    /// consecutive linear layers (none after the last).
    ///
    /// `Sequential::mlp(&[64, 256, 32], Activation::Relu, rng)` produces
    /// `Linear(64→256) → ReLU → Linear(256→32)`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn mlp<R: Rng + ?Sized>(widths: &[usize], act: Activation, rng: &mut R) -> Self {
        assert!(
            widths.len() >= 2,
            "mlp needs at least input and output widths"
        );
        let mut net = Sequential::new();
        for w in widths.windows(2) {
            net.push_linear(w[0], w[1], rng);
            net.push_activation(act);
        }
        // Drop the trailing activation so the output layer is linear.
        net.layers.pop();
        net
    }

    /// Appends a Xavier-initialized linear layer.
    pub fn push_linear<R: Rng + ?Sized>(&mut self, fan_in: usize, fan_out: usize, rng: &mut R) {
        self.layers
            .push(Layer::Linear(Linear::new(fan_in, fan_out, rng)));
    }

    /// Appends a pre-built linear layer.
    pub fn push_layer(&mut self, layer: Linear) {
        self.layers.push(Layer::Linear(layer));
    }

    /// Appends an activation layer.
    pub fn push_activation(&mut self, act: Activation) {
        self.layers.push(Layer::Activation {
            act,
            cached_input: None,
        });
    }

    /// Number of layers (linear and activation combined).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Linear(lin) => lin.param_count(),
                Layer::Activation { .. } => 0,
            })
            .sum()
    }

    /// All layers in order (for inspection and model persistence).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterates over the linear layers.
    pub fn linear_layers(&self) -> impl Iterator<Item = &Linear> {
        self.layers.iter().filter_map(|l| match l {
            Layer::Linear(lin) => Some(lin),
            Layer::Activation { .. } => None,
        })
    }

    /// Forward pass with caching (training mode).
    ///
    /// # Panics
    ///
    /// Panics if an internal shape mismatch occurs, which indicates the
    /// network was built with inconsistent widths.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = match layer {
                Layer::Linear(lin) => lin
                    .forward(&h)
                    .expect("sequential: layer widths are inconsistent"),
                Layer::Activation { act, cached_input } => {
                    *cached_input = Some(h.clone());
                    let a = *act;
                    h.map(move |v| a.apply(v))
                }
            };
        }
        h
    }

    /// Forward pass without caching (inference mode, `&self`).
    ///
    /// Large batches are split into fixed [`FORWARD_CHUNK_ROWS`]-row
    /// chunks scored concurrently on the [`cnd_parallel::current`] pool
    /// and restacked in order; every row passes through the identical
    /// serial layer sequence, so the output is bit-identical to a fully
    /// serial pass at any `CND_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics if an internal shape mismatch occurs.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let pool = cnd_parallel::current();
        if x.rows() >= PAR_FORWARD_MIN_ROWS && pool.threads() > 1 {
            let outs = pool.par_chunks(x.rows(), FORWARD_CHUNK_ROWS, |r| {
                let xb = x.rows_view(r.start, r.end).expect("chunk bounds in range");
                self.forward_inference_view(xb)
            });
            return Matrix::vstack_all(&outs).expect("chunks share column count");
        }
        self.forward_inference_view(x.view())
    }

    /// Inference over a borrowed row window. The first linear layer
    /// multiplies the view directly (the packed GEMM absorbs the
    /// borrow), so chunked batch inference never copies its input
    /// chunk — the old path cloned every `FORWARD_CHUNK_ROWS`-row
    /// slice before the first product.
    fn forward_inference_view(&self, x: MatrixRef<'_, f64>) -> Matrix {
        let mut h: Option<Matrix> = None;
        for layer in &self.layers {
            let next = match (layer, h.take()) {
                (Layer::Linear(lin), Some(hm)) => lin
                    .forward_inference(&hm)
                    .expect("sequential: layer widths are inconsistent"),
                (Layer::Linear(lin), None) => lin
                    .forward_inference_view(x)
                    .expect("sequential: layer widths are inconsistent"),
                (Layer::Activation { act, .. }, Some(mut hm)) => {
                    let a = *act;
                    hm.map_inplace(move |v| a.apply(v));
                    hm
                }
                (Layer::Activation { act, .. }, None) => {
                    let a = *act;
                    let mut hm = x.to_matrix();
                    hm.map_inplace(move |v| a.apply(v));
                    hm
                }
            };
            h = Some(next);
        }
        h.unwrap_or_else(|| x.to_matrix())
    }

    /// Backward pass: takes `dL/d_output`, returns `dL/d_input`,
    /// accumulating parameter gradients in each linear layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardPass`] if `forward` has not been called
    /// since construction or the last `zero_grad`.
    pub fn backward(&mut self, d_out: &Matrix) -> Result<Matrix, NnError> {
        let mut d = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            d = match layer {
                Layer::Linear(lin) => lin.backward(&d)?,
                Layer::Activation { act, cached_input } => {
                    let x = cached_input.as_ref().ok_or(NnError::NoForwardPass)?;
                    if x.shape() != d.shape() {
                        return Err(NnError::BatchMismatch {
                            left: d.shape(),
                            right: x.shape(),
                        });
                    }
                    let a = *act;
                    let dact = x.map(move |v| a.derivative(v));
                    d.hadamard(&dact)?
                }
            };
        }
        Ok(d)
    }

    /// Clears all accumulated gradients and cached activations.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            match layer {
                Layer::Linear(lin) => lin.zero_grad(),
                Layer::Activation { cached_input, .. } => *cached_input = None,
            }
        }
    }

    /// Applies one optimizer step to every linear layer.
    ///
    /// Tensor ids are assigned as `2 * layer_index` / `2 * layer_index + 1`
    /// so optimizer state stays attached to the same tensors across steps.
    pub fn apply_gradients<O: Optimizer + ?Sized>(&mut self, opt: &mut O) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Layer::Linear(lin) = layer {
                lin.apply_gradients(opt, 2 * i);
            }
        }
    }

    /// Applies gradients with tensor ids offset by `id_offset` — lets two
    /// networks (e.g. encoder and decoder) share one optimizer without
    /// colliding state.
    pub fn apply_gradients_offset<O: Optimizer + ?Sized>(&mut self, opt: &mut O, id_offset: usize) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Layer::Linear(lin) = layer {
                lin.apply_gradients(opt, id_offset + 2 * i);
            }
        }
    }

    /// Deep-copies the parameters of `other` into `self`.
    ///
    /// Used to restore model snapshots for the latent continual-learning
    /// loss. Architectures must match.
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different architectures.
    pub fn copy_params_from(&mut self, other: &Sequential) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "copy_params_from: architecture mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            match (a, b) {
                (Layer::Linear(la), Layer::Linear(lb)) => {
                    assert_eq!(
                        la.weights().shape(),
                        lb.weights().shape(),
                        "copy_params_from: layer shape mismatch"
                    );
                    *la = Linear::from_parts(lb.weights().clone(), lb.bias().to_vec());
                }
                (Layer::Activation { .. }, Layer::Activation { .. }) => {}
                _ => panic!("copy_params_from: layer kind mismatch"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn mlp_builder_shapes() {
        let mut r = rng();
        let net = Sequential::mlp(&[6, 8, 3], Activation::Relu, &mut r);
        // Linear, Act, Linear — trailing activation dropped.
        assert_eq!(net.len(), 3);
        assert_eq!(net.param_count(), 6 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn mlp_needs_two_widths() {
        let mut r = rng();
        Sequential::mlp(&[4], Activation::Relu, &mut r);
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng();
        let mut net = Sequential::mlp(&[5, 7, 2], Activation::Tanh, &mut r);
        let y = net.forward(&Matrix::zeros(3, 5));
        assert_eq!(y.shape(), (3, 2));
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut r = rng();
        let mut net = Sequential::mlp(&[4, 6, 4], Activation::Sigmoid, &mut r);
        let x = Matrix::from_fn(5, 4, |i, j| ((i * j) as f64).sin());
        let a = net.forward(&x);
        let b = net.forward_inference(&x);
        assert!(a.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = rng();
        let mut net = Sequential::mlp(&[3, 3], Activation::Relu, &mut r);
        assert!(net.backward(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut r = rng();
        let mut net = Sequential::mlp(&[4, 8, 4], Activation::Tanh, &mut r);
        let x = Matrix::from_fn(16, 4, |i, j| ((i * 3 + j) % 5) as f64 / 5.0);
        let mut opt = crate::Adam::new(0.01);
        let initial = {
            let y = net.forward(&x);
            y.sub(&x).unwrap().frobenius_sq() / x.len() as f64
        };
        for _ in 0..200 {
            net.zero_grad();
            let y = net.forward(&x);
            let diff = y.sub(&x).unwrap();
            let d = diff.scale(2.0 / x.len() as f64);
            net.backward(&d).unwrap();
            net.apply_gradients(&mut opt);
        }
        let final_loss = {
            let y = net.forward(&x);
            y.sub(&x).unwrap().frobenius_sq() / x.len() as f64
        };
        assert!(
            final_loss < initial * 0.5,
            "loss did not halve: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn copy_params_from_clones_behaviour() {
        let mut r = rng();
        let mut a = Sequential::mlp(&[3, 5, 3], Activation::Relu, &mut r);
        let mut b = Sequential::mlp(&[3, 5, 3], Activation::Relu, &mut r);
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.3);
        assert!(a.forward(&x).max_abs_diff(&b.forward(&x)) > 1e-6);
        b.copy_params_from(&a);
        assert!(
            a.forward_inference(&x)
                .max_abs_diff(&b.forward_inference(&x))
                < 1e-15
        );
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn copy_params_rejects_mismatch() {
        let mut r = rng();
        let mut a = Sequential::mlp(&[3, 5, 3], Activation::Relu, &mut r);
        let b = Sequential::mlp(&[3, 5, 5, 3], Activation::Relu, &mut r);
        a.copy_params_from(&b);
    }

    #[test]
    fn shared_optimizer_offsets_do_not_collide() {
        let mut r = rng();
        let mut enc = Sequential::mlp(&[4, 3], Activation::Identity, &mut r);
        let mut dec = Sequential::mlp(&[3, 4], Activation::Identity, &mut r);
        let x = Matrix::filled(2, 4, 1.0);
        let mut opt = crate::Adam::new(0.01);
        enc.zero_grad();
        dec.zero_grad();
        let h = enc.forward(&x);
        let y = dec.forward(&h);
        let d = y.sub(&x).unwrap().scale(2.0 / x.len() as f64);
        let dh = dec.backward(&d).unwrap();
        enc.backward(&dh).unwrap();
        enc.apply_gradients_offset(&mut opt, 0);
        dec.apply_gradients_offset(&mut opt, 1000);
        // Smoke: both nets updated without state-collision panics.
        assert!(enc.forward_inference(&x).is_finite());
    }
}
