/// Elementwise activation functions.
///
/// Each variant provides the forward map and its derivative; the
/// derivative is evaluated at the *pre-activation* input, which the
/// [`crate::Sequential`] caches during the forward pass.
///
/// # Example
///
/// ```
/// use cnd_nn::Activation;
/// assert_eq!(Activation::Relu.apply(-1.0), 0.0);
/// assert_eq!(Activation::Relu.apply(2.0), 2.0);
/// assert_eq!(Activation::Relu.derivative(2.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Leaky ReLU with the given negative-side slope.
    LeakyRelu(f64),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Identity (useful for testing and for linear bottlenecks).
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(a) => {
                if x >= 0.0 {
                    x
                } else {
                    a * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Applies the activation to a single `f32` value — the quantized
    /// inference path ([`crate::SequentialF32`]).
    ///
    /// Evaluated natively in `f32` (not widen-apply-narrow): the error
    /// against the f64 path is then bounded by the activation's
    /// Lipschitz constant (≤ 1 for every variant except
    /// `LeakyRelu(a > 1)`) times the accumulated input error, which the
    /// deploy-level tolerance contract accounts for.
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(a) => {
                if x >= 0.0 {
                    x
                } else {
                    a as f32 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation evaluated at pre-activation `x`.
    ///
    /// At the ReLU kink (`x == 0`) the subgradient `0` is used, matching
    /// common deep-learning frameworks.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(a) => {
                if x > 0.0 {
                    1.0
                } else {
                    a
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 5] = [
        Activation::Relu,
        Activation::LeakyRelu(0.01),
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Identity,
    ];

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn leaky_relu_slope() {
        let a = Activation::LeakyRelu(0.1);
        assert!((a.apply(-2.0) + 0.2).abs() < 1e-12);
        assert_eq!(a.derivative(-2.0), 0.1);
        assert_eq!(a.derivative(2.0), 1.0);
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(100.0) <= 1.0);
        assert!(s.apply(-100.0) >= 0.0);
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tanh_odd_function() {
        let t = Activation::Tanh;
        assert!((t.apply(1.3) + t.apply(-1.3)).abs() < 1e-12);
        assert!((t.derivative(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ACTS {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let an = act.derivative(x);
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} at {x}: fd={fd}, analytic={an}"
                );
            }
        }
    }
}
