use std::error::Error;
use std::fmt;

use cnd_linalg::LinalgError;

/// Error type for neural-network operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying matrix operation failed (shape mismatch etc.).
    Linalg(LinalgError),
    /// `backward` was called before `forward` (no cached activations).
    NoForwardPass,
    /// The batch shapes passed to a loss function disagree.
    BatchMismatch {
        /// Shape of the first operand.
        left: (usize, usize),
        /// Shape of the second operand.
        right: (usize, usize),
    },
    /// A loss function was given an empty batch.
    EmptyBatch,
    /// Labels vector length does not match the batch row count.
    LabelMismatch {
        /// Number of rows in the batch.
        batch: usize,
        /// Number of labels provided.
        labels: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            NnError::NoForwardPass => write!(f, "backward called before forward"),
            NnError::BatchMismatch { left, right } => write!(
                f,
                "batch shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NnError::EmptyBatch => write!(f, "loss requires a non-empty batch"),
            NnError::LabelMismatch { batch, labels } => {
                write!(f, "batch has {batch} rows but {labels} labels were given")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for NnError {
    fn from(e: LinalgError) -> Self {
        NnError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(LinalgError::Empty { op: "x" });
        assert!(e.to_string().contains("linear algebra"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&NnError::NoForwardPass).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
