//! Weight initialization schemes.

use cnd_linalg::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `(fan_in, fan_out)` weight
/// matrix: entries drawn from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the workspace default — appropriate for the tanh/sigmoid-style
/// bottlenecks used in the CFE autoencoder.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = cnd_nn::init::xavier_uniform(8, 4, &mut rng);
/// assert_eq!(w.shape(), (8, 4));
/// let bound = (6.0f64 / 12.0).sqrt();
/// assert!(w.iter().all(|&v| v.abs() <= bound));
/// ```
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// He/Kaiming uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Preferred for ReLU stacks.
pub fn he_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / fan_in.max(1) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// Standard normal initialization scaled by `std`.
pub fn normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, std: f64, rng: &mut R) -> Matrix {
    // Box-Muller transform keeps us independent of rand_distr.
    Matrix::from_fn(fan_in, fan_out, |_, _| {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let w = xavier_uniform(10, 6, &mut rng);
        let bound = (6.0 / 16.0f64).sqrt();
        assert!(w.iter().all(|&v| v.abs() <= bound));
        assert_eq!(w.shape(), (10, 6));
    }

    #[test]
    fn he_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let w = he_uniform(9, 3, &mut rng);
        let bound = (6.0 / 9.0f64).sqrt();
        assert!(w.iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn normal_has_roughly_right_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let w = normal(100, 100, 0.5, &mut rng);
        let mean = w.mean();
        let var = w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(xavier_uniform(4, 4, &mut a), xavier_uniform(4, 4, &mut b));
    }
}
