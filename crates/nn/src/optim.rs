use std::collections::HashMap;

/// A first-order optimizer updating one parameter tensor at a time.
///
/// Implementations keep per-tensor state (momentum buffers, Adam moments)
/// keyed by the caller-supplied `tensor_id`; [`crate::Sequential`] assigns
/// stable ids so state survives across steps.
pub trait Optimizer {
    /// Performs one update `params -= f(grads)` for the tensor
    /// identified by `tensor_id`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `params.len() != grads.len()` or if a
    /// `tensor_id` is reused with a different length.
    fn step(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
///
/// # Example
///
/// ```
/// use cnd_nn::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1);
/// let mut p = vec![1.0];
/// opt.step(0, &mut p, &[2.0]);
/// assert!((p[0] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Vec<f64>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "sgd: length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(tensor_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(
            v.len(),
            params.len(),
            "sgd: tensor_id reused with new length"
        );
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.momentum * *vi - self.lr * g;
            *p += *vi;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2017) — the paper trains the CFE with
/// Adam at learning rate `0.001`, which is the [`Adam::new`] default
/// configuration's intended use.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Per-tensor `(m, v, t)` state.
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the canonical hyper-parameters
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Adam with explicit moment decay rates.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Discards all per-tensor state (fresh start, e.g. at an experience
    /// boundary if desired).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "adam: length mismatch");
        let st = self.state.entry(tensor_id).or_insert_with(|| AdamState {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(
            st.m.len(),
            params.len(),
            "adam: tensor_id reused with new length"
        );
        st.t += 1;
        let b1t = 1.0 - self.beta1.powi(st.t as i32);
        let b2t = 1.0 - self.beta2.powi(st.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            st.m[i] = self.beta1 * st.m[i] + (1.0 - self.beta1) * g;
            st.v[i] = self.beta2 * st.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = st.m[i] / b1t;
            let v_hat = st.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_plain_step() {
        let mut o = Sgd::new(0.5);
        let mut p = vec![1.0, 2.0];
        o.step(0, &mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.5, 2.5]);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut o = Sgd::with_momentum(0.1, 0.9);
        let mut p = vec![0.0];
        o.step(0, &mut p, &[1.0]);
        let first = p[0];
        o.step(0, &mut p, &[1.0]);
        let second_delta = p[0] - first;
        // With momentum the second step is larger than the first.
        assert!(second_delta.abs() > first.abs());
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first Adam step has magnitude ~lr.
        let mut o = Adam::new(0.001);
        let mut p = vec![1.0];
        o.step(0, &mut p, &[0.3]);
        assert!((1.0 - p[0] - 0.001).abs() < 1e-6, "step = {}", 1.0 - p[0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x - 3)^2 with gradient 2(x - 3).
        let mut o = Adam::new(0.1);
        let mut p = vec![0.0];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            o.step(0, &mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "x = {}", p[0]);
    }

    #[test]
    fn adam_state_separate_per_tensor() {
        let mut o = Adam::new(0.1);
        let mut a = vec![0.0];
        let mut b = vec![0.0, 0.0];
        o.step(0, &mut a, &[1.0]);
        o.step(1, &mut b, &[1.0, 1.0]);
        assert!(a[0] != 0.0 && b[0] != 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn adam_rejects_bad_lengths() {
        let mut o = Adam::new(0.1);
        let mut p = vec![0.0];
        o.step(0, &mut p, &[1.0, 2.0]);
    }

    #[test]
    fn learning_rate_round_trip() {
        let mut o = Adam::new(0.1);
        o.set_learning_rate(0.01);
        assert_eq!(o.learning_rate(), 0.01);
        let mut s = Sgd::new(0.2);
        s.set_learning_rate(0.3);
        assert_eq!(s.learning_rate(), 0.3);
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut o = Adam::new(0.1);
        let mut p = vec![0.0];
        o.step(0, &mut p, &[1.0]);
        o.reset();
        let mut q = vec![0.0];
        o.step(0, &mut q, &[1.0]);
        assert!(
            (p[0] - q[0]).abs() < 1e-12,
            "fresh state reproduces first step"
        );
    }
}
