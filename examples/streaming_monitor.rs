//! Online monitoring with automatic experience detection.
//!
//! The paper assumes experience boundaries are known; a live deployment
//! must *discover* them. This example feeds the WUSTL-IIoT replica to
//! [`StreamingCndIds`] in small batches, as a collector would, and lets
//! the built-in drift detector decide when the traffic distribution has
//! shifted enough to warrant a new training experience.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use cnd_ids::core::streaming::{StreamEvent, StreamingCndIds, StreamingConfig, Trigger};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 13;
    let profile = DatasetProfile::XIiotId;
    let data = profile.generate(&GeneratorConfig::standard(seed))?;
    let split = continual::prepare(&data, profile.default_experiences(), 0.7, seed)?;

    let model = CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal)?;
    let mut stream = StreamingCndIds::new(
        model,
        StreamingConfig {
            max_buffer: 6_000,
            bootstrap_batch: 1_500,
            min_batch: 300,
            drift_window: 150,
            drift_threshold: 2.0,
            reservoir_seed: 42,
        },
    );

    println!("Feeding the continual stream in batches of 100 flows ...\n");
    let batch_size = 100;
    let mut batches = 0;
    let mut experiences = 0;
    for (i, e) in split.experiences.iter().enumerate() {
        println!("-- upstream experience E{i} begins (hidden from the model) --");
        let n = e.train_x.rows();
        let mut at = 0;
        while at < n {
            let end = (at + batch_size).min(n);
            let batch = e.train_x.slice_rows(at, end)?;
            match stream.push_flows(&batch)? {
                StreamEvent::ExperienceTrained {
                    samples,
                    trigger,
                    stats,
                } => {
                    experiences += 1;
                    let cause = match trigger {
                        Trigger::DriftDetected => "drift detected",
                        Trigger::BufferFull => "buffer full",
                        Trigger::Manual => "manual flush",
                    };
                    println!(
                        "   [batch {batches:>4}] trained experience #{experiences} on {samples} flows ({cause}; K={}, pseudo-anomalous {:.0}%)",
                        stats.k_selected,
                        100.0 * stats.pseudo_anomalous_fraction,
                    );
                }
                StreamEvent::Buffered { .. } => {}
            }
            at = end;
            batches += 1;
        }
    }
    if stream.buffered() > 0 {
        if let StreamEvent::ExperienceTrained { samples, .. } = stream.flush()? {
            experiences += 1;
            println!("   [final flush] trained experience #{experiences} on {samples} flows");
        }
    }

    println!("\n{batches} batches consumed, {experiences} experiences self-triggered.");
    println!(
        "Model now at {} training experiences; scoring the last test set:",
        stream.model().experiences_trained()
    );
    let last = split.experiences.last().expect("non-empty");
    let scores = stream.model().anomaly_scores(&last.test_x)?;
    let sel = cnd_ids::metrics::threshold::best_f1_threshold(&scores, &last.test_y)?;
    println!("F1 on the final (zero-day) experience: {:.3}", sel.f1);
    Ok(())
}
