//! Quickstart: run CND-IDS through the paper's continual protocol on a
//! scaled synthetic replica of WUSTL-IIoT.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Set `CND_OBS=1` to trace the run (phase summary on stderr) and
//! `CND_OBS_OUT=<path>` to also write the JSONL trace.

use cnd_ids::core::runner::evaluate_continual;
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs_on = cnd_ids::obs::init_from_env();
    let seed = 7;
    let profile = DatasetProfile::WustlIiot;

    println!("Generating a scaled synthetic replica of {profile} ...");
    let data = profile.generate(&GeneratorConfig::standard(seed))?;
    println!(
        "  {} samples, {} features, {} attack classes ({:.1}% attack)",
        data.len(),
        data.n_features(),
        data.n_attack_classes(),
        100.0 * data.attack_count() as f64 / data.len() as f64,
    );

    let m = profile.default_experiences();
    let split = continual::prepare(&data, m, 0.7, seed)?;
    println!(
        "Continual split: {} experiences, N_c = {} clean normal samples",
        split.len(),
        split.clean_normal.rows()
    );

    let mut model = CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal)?;
    let outcome = evaluate_continual(&mut model, &split)?;

    println!("\nResult matrix R_ij (rows: trained through E_i, cols: tested on E_j):");
    for i in 0..m {
        print!("  after E{i}: ");
        for j in 0..m {
            print!("{:6.3}", outcome.f1_matrix.get(i, j));
        }
        println!();
    }

    let s = outcome.f1_matrix.summary();
    println!("\nContinual-learning metrics (paper Fig. 3):");
    println!("  AVG      (seen attacks)     = {:.3}", s.avg);
    println!("  FwdTrans (zero-day attacks) = {:.3}", s.fwd_trans);
    println!("  BwdTrans (forgetting)       = {:+.3}", s.bwd_trans);
    if let Some(ap) = outcome.final_pr_auc() {
        println!("  PR-AUC   (threshold-free)   = {:.3}", ap);
    }
    println!(
        "  inference: {:.4} ms/sample, training: {:.1} s total",
        outcome.inference_ms_per_sample, outcome.train_seconds
    );
    if obs_on {
        if let Some(path) = cnd_ids::obs::flush_to_env_path()? {
            eprintln!("trace written to {}", path.display());
        }
        eprint!("{}", cnd_ids::obs::summary());
    }
    Ok(())
}
