//! Compare CND-IDS against the static novelty-detection baselines
//! (LOF, OC-SVM, PCA, Deep Isolation Forest) on one dataset profile —
//! a single-dataset rendition of the paper's Fig. 4.
//!
//! ```sh
//! cargo run --release --example detector_comparison
//! ```

use cnd_ids::core::runner::{evaluate_continual, evaluate_static_detector};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::detectors::{
    DeepIsolationForest, IsolationForest, LocalOutlierFactor, NoveltyDetector, OneClassSvm,
    PcaDetector,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 17;
    let profile = DatasetProfile::XIiotId;
    println!("Novelty-detector comparison on {profile} (paper Fig. 4, one dataset)\n");

    let data = profile.generate(&GeneratorConfig::standard(seed))?;
    let split = continual::prepare(&data, profile.default_experiences(), 0.7, seed)?;

    // Static detectors: fitted once on the clean normal subset N_c;
    // they cannot learn from the contaminated unlabelled stream.
    let mut detectors: Vec<Box<dyn NoveltyDetector>> = vec![
        Box::new(LocalOutlierFactor::new(20)),
        Box::new(OneClassSvm::new(Default::default())),
        Box::new(PcaDetector::new(0.95)),
        Box::new(DeepIsolationForest::new(Default::default())),
        Box::new(IsolationForest::new(100, 256, seed)),
    ];

    println!(
        "{:<18}{:>12}{:>12}{:>16}",
        "method", "avg F1", "PR-AUC", "ms/sample"
    );
    for det in detectors.iter_mut() {
        let out = evaluate_static_detector(det.as_mut(), &split)?;
        println!(
            "{:<18}{:>12.3}{:>12}{:>16.4}",
            out.name,
            out.average_f1(),
            out.pr_auc
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "-".into()),
            out.inference_ms_per_sample,
        );
    }

    // CND-IDS learns continually from the same stream.
    let mut model = CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal)?;
    let out = evaluate_continual(&mut model, &split)?;
    println!(
        "{:<18}{:>12.3}{:>12}{:>16.4}",
        "CND-IDS (ours)",
        out.f1_matrix.avg(),
        out.final_pr_auc()
            .map(|p| format!("{p:.3}"))
            .unwrap_or_else(|| "-".into()),
        out.inference_ms_per_sample,
    );
    println!("\nCND-IDS exploits the unlabelled stream the static detectors must ignore.");
    Ok(())
}
