//! Zero-day detection scenario (the paper's motivating Fig. 1).
//!
//! A supervised MLP-IDS is trained with labels on the attack classes of
//! the *first* experience only, then confronted with the attacks of the
//! remaining experiences — attack types it has never seen. CND-IDS
//! consumes the same stream without any labels. The supervised model's
//! F1 collapses on unknown attacks; the novelty-detection approach
//! degrades far more gracefully.
//!
//! ```sh
//! cargo run --release --example zero_day_detection
//! ```

use cnd_ids::core::supervised::{MlpClassifier, MlpClassifierConfig};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::metrics::classification::f1_score;
use cnd_ids::metrics::threshold::{apply_threshold, best_f1_threshold};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 11;
    let profile = DatasetProfile::UnswNb15;
    println!("Scenario: {profile}, supervised IDS vs CND-IDS on zero-day attacks\n");

    let data = profile.generate(&GeneratorConfig::standard(seed))?;
    let split = continual::prepare(&data, profile.default_experiences(), 0.7, seed)?;

    // --- Supervised IDS: full labels, but only for experience 0. ---
    let e0 = &split.experiences[0];
    let labels0: Vec<u8> = e0.train_class.iter().map(|&c| u8::from(c != 0)).collect();
    let mut supervised = MlpClassifier::new(MlpClassifierConfig {
        seed,
        ..Default::default()
    });
    supervised.fit(&e0.train_x, &labels0)?;

    // --- CND-IDS: no labels at all, trained on the same stream. ---
    let mut cnd = CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal)?;
    cnd.train_experience(&e0.train_x)?;

    println!(
        "{:<14}{:>14}{:>14}",
        "test set", "supervised F1", "CND-IDS F1"
    );
    let mut known = (0.0, 0.0);
    let mut unknown: Vec<(f64, f64)> = Vec::new();
    for (j, e) in split.experiences.iter().enumerate() {
        let sup_pred = supervised.predict(&e.test_x)?;
        let sup_f1 = f1_score(&sup_pred, &e.test_y)?;
        let scores = cnd.anomaly_scores(&e.test_x)?;
        let sel = best_f1_threshold(&scores, &e.test_y)?;
        let cnd_pred = apply_threshold(&scores, sel.threshold);
        let cnd_f1 = f1_score(&cnd_pred, &e.test_y)?;
        let tag = if j == 0 { "known" } else { "zero-day" };
        println!("E{j} ({tag:<8}){sup_f1:>14.3}{cnd_f1:>14.3}");
        if j == 0 {
            known = (sup_f1, cnd_f1);
        } else {
            unknown.push((sup_f1, cnd_f1));
        }
    }

    let avg = |v: &[(f64, f64)], pick: fn(&(f64, f64)) -> f64| {
        v.iter().map(pick).sum::<f64>() / v.len() as f64
    };
    println!(
        "\nKnown attacks:    supervised {:.3} | CND-IDS {:.3}",
        known.0, known.1
    );
    println!(
        "Zero-day attacks: supervised {:.3} | CND-IDS {:.3}",
        avg(&unknown, |p| p.0),
        avg(&unknown, |p| p.1)
    );
    println!("\nThe supervised model overfits the attack types it was shown;");
    println!("the novelty-detection formulation generalizes to unseen attacks.");
    Ok(())
}
