//! Deployment workflow: train CND-IDS on the stream, freeze it into a
//! [`DeployedScorer`], persist it to disk, reload it, and monitor new
//! traffic with a label-free quantile threshold — the pieces a real
//! installation needs after the research loop is done.
//!
//! ```sh
//! cargo run --release --example deploy_scorer
//! ```

use cnd_ids::core::deploy::DeployedScorer;
use cnd_ids::core::runner::evaluate_continual;
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::metrics::classification::ConfusionCounts;
use cnd_ids::metrics::threshold::{apply_threshold, quantile_threshold};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 23;
    let profile = DatasetProfile::WustlIiot;
    println!("1. Training CND-IDS on the {profile} stream ...");
    let data = profile.generate(&GeneratorConfig::standard(seed))?;
    let split = continual::prepare(&data, profile.default_experiences(), 0.7, seed)?;
    let mut model = CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal)?;
    let outcome = evaluate_continual(&mut model, &split)?;
    println!(
        "   trained; AVG F1 during the stream = {:.3}",
        outcome.f1_matrix.avg()
    );

    println!("2. Freezing and persisting the scorer ...");
    let scorer = DeployedScorer::from_model(&model)?;
    let path = std::env::temp_dir().join("cnd_ids_scorer.txt");
    // Atomic tmp+rename save: a live `serve --watch` reloader polling
    // this path can never read a half-written artifact.
    scorer.save_to_path(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("   wrote {} ({bytes} bytes)", path.display());

    println!("3. Reloading on the 'monitoring host' ...");
    let deployed = DeployedScorer::load_from_path(&path)?;

    println!("4. Calibrating a label-free threshold (5% alert budget on clean traffic)");
    let calibration = deployed.anomaly_scores(&split.clean_normal)?;
    let tau = quantile_threshold(&calibration, 0.95)?;
    println!("   tau = {tau:.4}");

    println!("5. Monitoring the final experience's traffic:");
    let last = split.experiences.last().expect("split is non-empty");
    let scores = deployed.anomaly_scores(&last.test_x)?;
    let pred = apply_threshold(&scores, tau);
    let counts = ConfusionCounts::from_predictions(&pred, &last.test_y)?;
    println!(
        "   {} flows: {} alerts, precision {:.3}, recall {:.3}, F1 {:.3}",
        counts.total(),
        counts.true_positives + counts.false_positives,
        counts.precision(),
        counts.recall(),
        counts.f1(),
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
