//! Observed run: trace a full continual evaluation with `cnd-obs` and
//! print the phase-time breakdown, metrics, and span coverage.
//!
//! ```sh
//! cargo run --release --example observed_run
//! ```
//!
//! Unlike `quickstart` (which only traces when `CND_OBS` is set), this
//! example always enables the observability layer, writes the JSONL
//! trace to a temp file, and then replays it through the same
//! `phase_report` machinery that backs `cnd-ids-cli observe`.

use cnd_ids::core::runner::evaluate_continual;
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::obs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Wall clock: real microsecond timings. Use `Session::deterministic()`
    // (or `CND_OBS=det` in the CLI) for byte-reproducible traces instead.
    let _session = obs::Session::wall();

    let seed = 7;
    let data = DatasetProfile::WustlIiot.generate(&GeneratorConfig::small(seed))?;
    let split = continual::prepare(&data, 3, 0.7, seed)?;
    println!(
        "tracing a continual run: {} experiences on {} samples",
        split.len(),
        data.len()
    );

    let mut model = CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal)?;
    let outcome = evaluate_continual(&mut model, &split)?;
    println!("AVG = {:.3}", outcome.f1_matrix.avg());

    // Snapshot the trace, persist it, and replay it as a phase report.
    let jsonl = obs::snapshot_jsonl();
    let path = std::env::temp_dir().join("cnd_ids_observed_run.jsonl");
    std::fs::write(&path, &jsonl)?;
    let lines = obs::trace::validate_jsonl(&jsonl).map_err(std::io::Error::other)?;
    println!("\ntrace: {} ({lines} JSONL lines)", path.display());

    let report = obs::phase_report(&jsonl).map_err(std::io::Error::other)?;
    print!("{}", report.render());
    let cov = report.coverage(&["runner.train", "runner.score", "runner.eval"]);
    println!(
        "runner phases cover {:.1}% of the traced wall time",
        100.0 * cov
    );
    Ok(())
}
