//! Run the CND-IDS pipeline on your own CSV dataset.
//!
//! The loader expects numeric feature columns with the class label last
//! (`normal` / `benign` / `0` = benign, anything else = an attack
//! class). This example writes a small synthetic CSV to a temp file
//! first so it is runnable out of the box; point `path` at a real
//! intrusion CSV (e.g. a UNSW-NB15 export) to reproduce the pipeline on
//! real data.
//!
//! ```sh
//! cargo run --release --example custom_csv [path/to/data.csv]
//! ```

use std::io::Write;

use cnd_ids::core::runner::evaluate_continual;
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, loader, DatasetProfile, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            // No file supplied: synthesize one from the UNSW profile.
            let data = DatasetProfile::UnswNb15.generate(&GeneratorConfig::small(3))?;
            let path = std::env::temp_dir().join("cnd_ids_example.csv");
            let mut f = std::fs::File::create(&path)?;
            for (row, &class) in data.x.iter_rows().zip(&data.class) {
                for v in row {
                    write!(f, "{v:.6},")?;
                }
                writeln!(f, "{}", data.class_names[class])?;
            }
            println!("(no CSV given — wrote a demo file to {})", path.display());
            path.to_string_lossy().into_owned()
        }
    };

    println!("Loading {path} ...");
    let data = loader::read_csv(&path, false)?;
    println!(
        "  {} rows, {} features, {} attack classes",
        data.len(),
        data.n_features(),
        data.n_attack_classes()
    );

    // Pick an experience count the class inventory can support.
    let m = data.n_attack_classes().clamp(2, 5);
    let split = continual::prepare(&data, m, 0.7, 0)?;
    let mut model = CndIds::new(CndIdsConfig::fast(0), &split.clean_normal)?;
    let outcome = evaluate_continual(&mut model, &split)?;

    let s = outcome.f1_matrix.summary();
    println!("\nCND-IDS on {}:", data.name);
    println!("  AVG      = {:.3}", s.avg);
    println!("  FwdTrans = {:.3}", s.fwd_trans);
    println!("  BwdTrans = {:+.3}", s.bwd_trans);
    Ok(())
}
