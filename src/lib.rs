//! # cnd-ids — Continual Novelty Detection for Intrusion Detection Systems
//!
//! A from-scratch Rust reproduction of *CND-IDS: Continual Novelty
//! Detection for Intrusion Detection Systems* (Fuhrman, Gungor, Rosing —
//! DAC 2025). This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`parallel`] | `cnd-parallel` | scoped thread pool, deterministic chunking |
//! | [`linalg`] | `cnd-linalg` | dense matrices, Jacobi eigen, statistics |
//! | [`nn`] | `cnd-nn` | MLP layers, backprop, Adam, MSE/triplet losses |
//! | [`ml`] | `cnd-ml` | K-Means (+elbow), PCA (+FRE), scalers |
//! | [`detectors`] | `cnd-detectors` | LOF, OC-SVM, iForest, DIF, PCA-FRE |
//! | [`datasets`] | `cnd-datasets` | synthetic Table-I profiles, CL splits, CSV loader |
//! | [`metrics`] | `cnd-metrics` | F1, Best-F, PR-AUC/ROC-AUC, AVG/Fwd/BwdTrans |
//! | [`core`] | `cnd-core` | CFE, `L_CND`, CND-IDS pipeline, ADCN/LwF, runner |
//! | [`obs`] | `cnd-obs` | spans, metrics registry, JSONL traces, phase reports |
//! | [`serve`] | `cnd-serve` | online scoring server: micro-batching, hot-swap, admission control |
//! | [`store`] | `cnd-store` | out-of-core `.cnds` flow store, chunked iterators, reservoir sampling |
//!
//! # Quickstart
//!
//! ```no_run
//! use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
//! use cnd_ids::core::{CndIds, CndIdsConfig};
//! use cnd_ids::core::runner::evaluate_continual;
//!
//! // 1. A scaled synthetic replica of WUSTL-IIoT and its continual split.
//! let data = DatasetProfile::WustlIiot.generate(&GeneratorConfig::standard(7))?;
//! let split = continual::prepare(&data, 4, 0.7, 7)?;
//!
//! // 2. CND-IDS, constructed around the clean normal subset N_c.
//! let mut model = CndIds::new(CndIdsConfig::paper(7), &split.clean_normal)?;
//!
//! // 3. Run the paper's continual protocol.
//! let outcome = evaluate_continual(&mut model, &split)?;
//! println!(
//!     "AVG={:.3} FwdTrans={:.3} BwdTrans={:+.3}",
//!     outcome.f1_matrix.avg(),
//!     outcome.f1_matrix.fwd_trans(),
//!     outcome.f1_matrix.bwd_trans(),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use cnd_core as core;
pub use cnd_datasets as datasets;
pub use cnd_detectors as detectors;
pub use cnd_linalg as linalg;
pub use cnd_metrics as metrics;
pub use cnd_ml as ml;
pub use cnd_nn as nn;
pub use cnd_obs as obs;
pub use cnd_parallel as parallel;
pub use cnd_serve as serve;
pub use cnd_store as store;
