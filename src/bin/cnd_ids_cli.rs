//! `cnd-ids-cli` — command-line interface to the CND-IDS reproduction.
//!
//! Subcommands:
//!
//! * `generate <profile> <out.csv> [--seed N] [--samples N]` — write a
//!   synthetic dataset replica to CSV (features..., label).
//! * `ingest <data.csv> <out.cnds> [--header] [--f32]` — convert a
//!   (possibly huge) CSV capture into the chunked binary `.cnds` flow
//!   store, streaming row by row; malformed rows are quarantined with
//!   line numbers and reasons (sidecar `<out>.quarantine`) rather than
//!   aborting the run.
//! * `run <data.csv> [--experiences M] [--seed N] [--paper]` — run the
//!   full continual protocol on a labelled CSV and print the result
//!   matrix and CL metrics.
//! * `train <data.csv|data.cnds> <model.txt> [--experiences M] [--seed N]`
//!   — train on the whole stream and persist a frozen scorer. With a
//!   `.cnds` store the training is out-of-core: rows stream through
//!   seeded reservoirs (`--clean-cap`, `--train-cap`, `--chunk-rows`)
//!   and only the sample is ever materialized.
//! * `score <model.txt> <data.csv|data.cnds> [--quantile Q]` — score a
//!   capture with a deployed model; prints one score (and alert flag)
//!   per line. A `.cnds` store is scored chunk-at-a-time with output
//!   byte-identical to the CSV path (`--chunk-rows` tunes the slab).
//! * `stream <data.csv> [--experiences M] [--seed N] [--chunk N]
//!   [--fault-rate R] [--health]` — drive the fault-tolerant streaming
//!   pipeline over the stream (optionally with seeded input corruption)
//!   and print pooled detection quality; `--health` appends the
//!   pipeline's final health report.
//! * `serve <model.txt> [--addr A] [--max-batch N] [--max-delay-us U]
//!   [--queue-cap N] [--threshold T | --quantile Q --calibrate N]
//!   [--watch [--watch-interval-ms MS]] [--score-f32] [--no-telemetry]
//!   [--runtime-s S]`
//!   — serve the frozen model over the `cnd-serve` TCP wire protocol
//!   with micro-batching, hot-swap reload, and admission control;
//!   `--score-f32` scores on the single-precision twin (threshold
//!   decisions stay in f64); `--no-telemetry` disables the per-stage
//!   lifecycle telemetry (rings + SLO tracking), which exists mainly
//!   to measure its own overhead. With
//!   `--continual --data <labelled.csv>` the process also runs the
//!   closed continual loop: live traffic is mirrored into a training
//!   buffer, score drift triggers a background retrain, candidates are
//!   shadow-validated against a held-out split, validated ones are
//!   canary-swapped in, and post-swap degradation rolls back to the
//!   last-known-good model (`--drift-window`, `--min-retrain`,
//!   `--probation` tune the loop). `--data` also accepts a `.cnds`
//!   store for an out-of-core bootstrap, and `--mirror-spill <out.cnds>`
//!   persists mirror-evicted flows to a store instead of dropping them.
//! * `loadgen <addr> [--flows N] [--concurrency C] [--rate R] [--seed N]
//!   [--reload-midway] [--tag T] [--out BENCH_serve.json] [--append]` —
//!   drive open-loop load against a running server and write a
//!   bench-check report with achieved flows/s and latency percentiles.
//! * `observe <trace.jsonl> [--top [N]] [--latency]` — validate a trace
//!   written by `--trace-out` (or `CND_OBS_OUT`) and print the
//!   phase-time breakdown; `--top` prints a self-time profile instead;
//!   `--latency` prints the latency-breakdown report (every hdr metric
//!   in the trace as count/mean/p50/p90/p99/p999/max).
//! * `bench-check <current> [--baseline <path>] [--update]
//!   [--tolerance T]` — compare a bench report or quality trace against
//!   a committed baseline under `baselines/` and exit non-zero on
//!   regression; `--update` (re)writes the baseline instead.
//! * `profiles` — list the built-in dataset profiles.
//!
//! Observability: setting `CND_OBS=1` (wall clock) or `CND_OBS=det`
//! (deterministic clock) — or passing `--trace-out <path>` to any
//! subcommand — records spans and metrics via `cnd-obs`. `--trace-out`
//! writes the JSONL trace to the given path; with `CND_OBS` alone a
//! summary table is printed to stderr (and the trace goes to
//! `CND_OBS_OUT` when that is set). Setting `CND_OBS_LISTEN=<addr>`
//! additionally serves live Prometheus `/metrics` and JSON `/health`
//! over HTTP for the lifetime of the process.
//!
//! Exit code is non-zero on any error; messages go to stderr.

use std::io::Write as _;
use std::process::ExitCode;

use cnd_core::deploy::DeployedScorer;
use cnd_core::runner::evaluate_continual;
use cnd_core::{CndIds, CndIdsConfig};
use cnd_datasets::{continual, loader, DatasetProfile, GeneratorConfig};
use cnd_metrics::threshold::{apply_threshold, quantile_threshold};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match parse_flag::<String>(&args, "--trace-out", String::new()) {
        Ok(s) if s.is_empty() => None,
        Ok(s) => Some(std::path::PathBuf::from(s)),
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let env_enabled = cnd_obs::init_from_env();
    if trace_out.is_some() && !env_enabled {
        cnd_obs::reset(cnd_obs::ClockKind::Wall);
        cnd_obs::set_enabled(true);
    }
    // Keep the exporter (if CND_OBS_LISTEN is set) alive until exit.
    let _exporter = cnd_obs::init_exporter_from_env();
    match run(&args) {
        Ok(code) => {
            if let Err(msg) = finish_observability(trace_out.as_deref(), env_enabled) {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
            code
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Writes/flushes the recorded trace after a successful run: `--trace-out`
/// gets the JSONL file, `CND_OBS_OUT` is honoured, and a plain `CND_OBS`
/// run prints the phase/metric summary to stderr.
fn finish_observability(
    trace_out: Option<&std::path::Path>,
    env_enabled: bool,
) -> Result<(), String> {
    if !cnd_obs::enabled() {
        return Ok(());
    }
    if let Some(path) = trace_out {
        cnd_obs::write_jsonl(path).map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
        eprintln!("trace written to {}", path.display());
    }
    if let Some(path) = cnd_obs::flush_to_env_path().map_err(|e| format!("CND_OBS_OUT: {e}"))? {
        eprintln!("trace written to {}", path.display());
    }
    if env_enabled {
        eprint!("{}", cnd_obs::summary());
    }
    Ok(())
}

const USAGE: &str = "usage:
  cnd-ids-cli profiles
  cnd-ids-cli generate <profile> <out.csv> [--seed N] [--samples N]
  cnd-ids-cli ingest <data.csv> <out.cnds> [--header] [--f32]
  cnd-ids-cli run <data.csv> [--experiences M] [--seed N] [--paper]
  cnd-ids-cli train <data.csv|data.cnds> <model.txt> [--experiences M] [--seed N] [--clean-cap N] [--train-cap N] [--chunk-rows N]
  cnd-ids-cli score <model.txt> <data.csv|data.cnds> [--quantile Q] [--chunk-rows N]
  cnd-ids-cli stream <data.csv> [--experiences M] [--seed N] [--chunk N] [--fault-rate R] [--health]
  cnd-ids-cli serve <model.txt> [--addr 127.0.0.1:7071] [--max-batch N] [--max-delay-us U] [--queue-cap N] [--threshold T] [--quantile Q] [--calibrate N] [--watch] [--watch-interval-ms MS] [--score-f32] [--no-telemetry] [--runtime-s S] [--continual --data <labelled.csv|.cnds> [--experiences M] [--seed N] [--drift-window N] [--min-retrain N] [--probation N] [--ledger <path>] [--flight-dump <path>] [--mirror-spill <out.cnds>]]
  cnd-ids-cli loadgen <addr> [--flows N] [--concurrency C] [--rate R] [--seed N] [--reload-midway] [--tag T] [--out <path>] [--append]
  cnd-ids-cli observe <trace.jsonl> [--top [N]] [--latency] [--timeline]
  cnd-ids-cli bench-check <current> [--baseline <path>] [--update] [--tolerance T]

observability: every subcommand accepts --trace-out <path> to record a
span/metric trace; CND_OBS=1 (wall) or CND_OBS=det (deterministic)
enables tracing with a stderr summary, CND_OBS_OUT=<path> writes JSONL,
CND_OBS_LISTEN=<addr> serves live /metrics (Prometheus) and /health.";

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{name} requires a value")),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for {name}: {v:?}")),
        },
    }
}

fn profile_by_name(name: &str) -> Result<DatasetProfile, String> {
    DatasetProfile::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown profile {name:?}; choose one of: {}",
                DatasetProfile::ALL.map(|p| p.name()).join(", ")
            )
        })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let rest = args.get(1..).unwrap_or_default();
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match args.first().map(String::as_str) {
        Some("profiles") => {
            for p in DatasetProfile::ALL {
                println!(
                    "{:<12} {} features, {} attack classes, {} experiences, {:.1}% attack",
                    p.name(),
                    p.n_features(),
                    p.n_attack_classes(),
                    p.default_experiences(),
                    100.0 * p.attack_fraction()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("generate") => done(cmd_generate(rest)),
        Some("ingest") => done(cmd_ingest(rest)),
        Some("run") => done(cmd_run(rest)),
        Some("train") => done(cmd_train(rest)),
        Some("score") => done(cmd_score(rest)),
        Some("stream") => done(cmd_stream(rest)),
        Some("serve") => done(cmd_serve(rest)),
        Some("loadgen") => cmd_loadgen(rest),
        Some("observe") => done(cmd_observe(rest)),
        Some("bench-check") => cmd_bench_check(rest),
        Some(other) => Err(format!("unknown subcommand {other:?}")),
        None => Err("no subcommand given".into()),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let profile = profile_by_name(args.first().ok_or("generate: missing <profile>")?)?;
    let out = args.get(1).ok_or("generate: missing <out.csv>")?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let samples: usize = parse_flag(args, "--samples", 12_000)?;
    let cfg = GeneratorConfig {
        total_samples: samples,
        ..GeneratorConfig::standard(seed)
    };
    let data = profile.generate(&cfg).map_err(|e| e.to_string())?;
    let mut f = std::fs::File::create(out).map_err(|e| e.to_string())?;
    for (row, &class) in data.x.iter_rows().zip(&data.class) {
        let mut line = String::with_capacity(row.len() * 12);
        for v in row {
            line.push_str(&format!("{v:.6},"));
        }
        line.push_str(&data.class_names[class]);
        writeln!(f, "{line}").map_err(|e| e.to_string())?;
    }
    eprintln!(
        "wrote {} rows x {} features ({} attack classes) to {out}",
        data.len(),
        data.n_features(),
        data.n_attack_classes()
    );
    Ok(())
}

fn load_and_split(
    path: &str,
    args: &[String],
) -> Result<(cnd_datasets::Dataset, continual::ContinualSplit, u64), String> {
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let data = loader::read_csv(path, false).map_err(|e| e.to_string())?;
    let default_m = data.n_attack_classes().clamp(2, 5);
    let m: usize = parse_flag(args, "--experiences", default_m)?;
    let split = continual::prepare(&data, m, 0.7, seed).map_err(|e| e.to_string())?;
    Ok((data, split, seed))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing <data.csv>")?;
    let (data, split, seed) = load_and_split(path, args)?;
    let cfg = if args.iter().any(|a| a == "--paper") {
        CndIdsConfig::paper(seed)
    } else {
        CndIdsConfig::fast(seed)
    };
    let mut model = CndIds::new(cfg, &split.clean_normal).map_err(|e| e.to_string())?;
    let out = evaluate_continual(&mut model, &split).map_err(|e| e.to_string())?;
    println!("dataset: {} ({} rows)", data.name, data.len());
    println!("result matrix R_ij (train i rows, test j cols):");
    let m = split.len();
    for i in 0..m {
        let cells: Vec<String> = (0..m)
            .map(|j| format!("{:.3}", out.f1_matrix.get(i, j)))
            .collect();
        println!("  E{i}: {}", cells.join("  "));
    }
    let s = out.f1_matrix.summary();
    println!(
        "AVG = {:.3}  FwdTrans = {:.3}  BwdTrans = {:+.3}",
        s.avg, s.fwd_trans, s.bwd_trans
    );
    if let Some(ap) = out.final_pr_auc() {
        println!("PR-AUC = {ap:.3}");
    }
    Ok(())
}

/// Converts a CSV capture into the chunked binary `.cnds` flow store
/// the out-of-core train/score paths consume.
fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let csv = args.first().ok_or("ingest: missing <data.csv>")?;
    let out = args.get(1).ok_or("ingest: missing <out.cnds>")?;
    let options = cnd_datasets::IngestOptions {
        // The CLI's CSV convention is headerless (matching `generate`,
        // `train`, and `score`); `--header` opts in to skipping line 1.
        // The safe failure mode is preserved either way: an unskipped
        // header is quarantined loudly, never silently dropped.
        has_header: args.iter().any(|a| a == "--header"),
        dtype: if args.iter().any(|a| a == "--f32") {
            cnd_store::DType::F32
        } else {
            cnd_store::DType::F64
        },
    };
    let report =
        cnd_datasets::ingest_csv_to_store(csv, out, &options).map_err(|e| e.to_string())?;
    eprintln!(
        "ingested {} rows x {} features ({} classes, {:?}) into {out}",
        report.rows_written,
        report.meta.dim,
        report.class_names.len(),
        report.meta.dtype,
    );
    if report.rows_quarantined > 0 {
        eprintln!(
            "quarantined {} malformed rows — see {}",
            report.rows_quarantined,
            report
                .sidecar
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
        for q in &report.quarantined {
            eprintln!("  line {}: {}", q.line, q.reason);
        }
        if report.rows_quarantined as usize > report.quarantined.len() {
            eprintln!(
                "  ... and {} more (full list in the sidecar)",
                report.rows_quarantined as usize - report.quarantined.len()
            );
        }
    }
    Ok(())
}

/// `true` when a data path names a `.cnds` flow store rather than a CSV.
fn is_store_path(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("cnds"))
}

/// Out-of-core `train`: stream the store through seeded reservoirs and
/// run one experience on the sample (see `cnd_core::outofcore`).
fn cmd_train_from_store(path: &str, model_out: &str, args: &[String]) -> Result<(), String> {
    use cnd_core::outofcore::{train_from_store, OutOfCoreTrainConfig};

    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let store = cnd_store::FlowStore::open(path).map_err(|e| e.to_string())?;
    let mut cfg = OutOfCoreTrainConfig::new(CndIdsConfig::fast(seed));
    cfg.seed = seed;
    cfg.clean_capacity = parse_flag(args, "--clean-cap", cfg.clean_capacity)?;
    cfg.train_capacity = parse_flag(args, "--train-cap", cfg.train_capacity)?;
    cfg.chunk_rows = parse_flag(args, "--chunk-rows", cfg.chunk_rows)?;
    let report = train_from_store(&store, &cfg).map_err(|e| e.to_string())?;
    let scorer = report.model.freeze().map_err(|e| e.to_string())?;
    scorer.save_to_path(model_out).map_err(|e| e.to_string())?;
    eprintln!(
        "streamed {} rows ({} clean candidates); trained on {} sampled rows (N_c {}); scorer written to {model_out}",
        report.rows_streamed, report.clean_candidates, report.train_sampled, report.clean_sampled
    );
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("train: missing <data.csv|data.cnds>")?;
    let model_out = args.get(1).ok_or("train: missing <model.txt>")?;
    if is_store_path(path) {
        return cmd_train_from_store(path, model_out, args);
    }
    let (_, split, seed) = load_and_split(path, args)?;
    let mut model =
        CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal).map_err(|e| e.to_string())?;
    for e in &split.experiences {
        model
            .train_experience(&e.train_x)
            .map_err(|e| e.to_string())?;
    }
    let scorer = DeployedScorer::from_model(&model).map_err(|e| e.to_string())?;
    // Atomic tmp+rename write: a concurrent `serve --watch` reloader
    // can never observe a half-written artifact.
    scorer.save_to_path(model_out).map_err(|e| e.to_string())?;
    eprintln!(
        "trained on {} experiences; scorer written to {model_out}",
        split.len()
    );
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    use cnd_core::resilience::{ResilientConfig, ResilientStreamingCndIds, ScriptedFaults};
    use cnd_core::runner::evaluate_resilient_streaming;

    let path = args.first().ok_or("stream: missing <data.csv>")?;
    let (data, split, seed) = load_and_split(path, args)?;
    let chunk: usize = parse_flag(args, "--chunk", 128)?;
    let fault_rate: f64 = parse_flag(args, "--fault-rate", 0.0)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {fault_rate}"));
    }
    let model =
        CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal).map_err(|e| e.to_string())?;
    let mut stream = ResilientStreamingCndIds::new(model, ResilientConfig::default())
        .map_err(|e| e.to_string())?;
    if fault_rate > 0.0 {
        stream.set_fault_injector(Box::new(
            ScriptedFaults::new(seed).with_corruption_rate(fault_rate),
        ));
    }
    let out =
        evaluate_resilient_streaming(&mut stream, &split, chunk).map_err(|e| e.to_string())?;
    println!("dataset: {} ({} rows)", data.name, data.len());
    println!(
        "stream:  {} experiences trained, {} failed attempts, fault rate {fault_rate}",
        out.trained, out.failed
    );
    println!("pooled best-F F1 = {:.3}", out.pooled_f1);
    if let Some(ap) = out.pr_auc {
        println!("pooled PR-AUC   = {ap:.3}");
    }
    if args.iter().any(|a| a == "--health") {
        println!("health report:");
        for line in out.health.to_string().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

/// In `--continual` mode: train the bootstrap model from the labelled
/// CSV, write its frozen scorer to `model_path` (the artifact the
/// server will serve and the loop will re-write on every swap), and
/// build the held-out validation set the shadow gate scores candidates
/// against.
/// `--continual --data <store.cnds>`: bootstrap out-of-core. The model
/// trains from reservoir samples streamed off the store, and the
/// store's trailing rows (with their labels) become the shadow
/// validation set — nothing larger than a chunk plus the reservoirs is
/// ever resident.
fn continual_bootstrap_from_store(
    model_path: &str,
    data_path: &str,
    args: &[String],
) -> Result<(CndIds, cnd_serve::ValidationSet), String> {
    use cnd_core::outofcore::{train_from_store, OutOfCoreTrainConfig};

    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let store = cnd_store::FlowStore::open(data_path).map_err(|e| e.to_string())?;
    if !store.meta().labelled {
        return Err(format!(
            "serve --continual with {data_path} needs a labelled store (shadow validation requires labels; re-ingest the CSV with its label column)"
        ));
    }
    let mut cfg = OutOfCoreTrainConfig::new(CndIdsConfig::fast(seed));
    cfg.seed = seed;
    cfg.chunk_rows = parse_flag(args, "--chunk-rows", cfg.chunk_rows)?;
    let report = train_from_store(&store, &cfg).map_err(|e| e.to_string())?;
    let val_len = (store.len() as usize).min(2048);
    let chunk = store
        .read_rows(store.len() as usize - val_len, val_len)
        .map_err(|e| e.to_string())?;
    let val_y: Vec<u8> = chunk.labels.iter().map(|&l| u8::from(l != 0)).collect();
    let val = cnd_serve::ValidationSet::new(chunk.rows, val_y).map_err(|e| e.to_string())?;
    let scorer = report.model.freeze().map_err(|e| e.to_string())?;
    scorer.save_to_path(model_path).map_err(|e| e.to_string())?;
    eprintln!(
        "continual bootstrap (out-of-core): streamed {} rows from {data_path}, trained on {} sampled rows (N_c {}), {} validation rows; artifact written to {model_path}",
        report.rows_streamed,
        report.train_sampled,
        report.clean_sampled,
        val.len()
    );
    Ok((report.model, val))
}

fn continual_bootstrap(
    model_path: &str,
    args: &[String],
) -> Result<(CndIds, cnd_serve::ValidationSet), String> {
    let data_path: String = parse_flag(args, "--data", String::new())?;
    if data_path.is_empty() {
        return Err("serve --continual requires --data <labelled.csv|.cnds> (bootstrap + shadow validation come from it)".into());
    }
    if is_store_path(&data_path) {
        return continual_bootstrap_from_store(model_path, &data_path, args);
    }
    let (_, split, seed) = load_and_split(&data_path, args)?;
    let mut model =
        CndIds::new(CndIdsConfig::fast(seed), &split.clean_normal).map_err(|e| e.to_string())?;
    let mut val_rows: Vec<Vec<f64>> = Vec::new();
    let mut val_y: Vec<u8> = Vec::new();
    for e in &split.experiences {
        model
            .train_experience(&e.train_x)
            .map_err(|e| e.to_string())?;
        for (row, &y) in e.test_x.iter_rows().zip(&e.test_y) {
            val_rows.push(row.to_vec());
            val_y.push(y);
        }
    }
    let val_x = cnd_linalg::Matrix::from_rows(&val_rows).map_err(|e| e.to_string())?;
    let val = cnd_serve::ValidationSet::new(val_x, val_y).map_err(|e| e.to_string())?;
    let scorer = model.freeze().map_err(|e| e.to_string())?;
    scorer.save_to_path(model_path).map_err(|e| e.to_string())?;
    eprintln!(
        "continual bootstrap: trained on {} experiences from {data_path}, {} validation rows; artifact written to {model_path}",
        split.len(),
        val.len()
    );
    Ok((model, val))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use cnd_serve::{ContinualConfig, ContinualController, ServeConfig, Server, TrafficMirror};

    let model_path = args.first().ok_or("serve: missing <model.txt>")?;
    let addr: String = parse_flag(args, "--addr", "127.0.0.1:7071".to_string())?;
    let max_delay_us: u64 = parse_flag(args, "--max-delay-us", 500)?;
    let threshold: f64 = parse_flag(args, "--threshold", f64::NAN)?;
    let watch_interval_ms: u64 = parse_flag(args, "--watch-interval-ms", 500)?;
    let runtime_s: u64 = parse_flag(args, "--runtime-s", 0)?;
    let continual = args.iter().any(|a| a == "--continual");

    // In continual mode the loop owns the trainable model and the
    // artifact on disk; bootstrap both before the server opens.
    let bootstrap = if continual {
        Some(continual_bootstrap(model_path, args)?)
    } else {
        None
    };
    let mirror = match &bootstrap {
        Some((model, _)) => {
            let spill: String = parse_flag(args, "--mirror-spill", String::new())?;
            Some(if spill.is_empty() {
                TrafficMirror::new(8192)
            } else {
                // Evicted mirror samples spill to a .cnds store instead
                // of vanishing, so the replay window effectively covers
                // the whole run for post-hoc analysis or re-training.
                let dim = model.scaler().mean().len();
                let writer =
                    cnd_store::StoreWriter::create(&spill, dim, cnd_store::DType::F64, false)
                        .map_err(|e| e.to_string())?;
                eprintln!("mirror evictions spill to {spill}");
                TrafficMirror::with_spill(8192, writer)
            })
        }
        None => None,
    };
    let mirror_handle = mirror.clone();

    let cfg = ServeConfig {
        max_batch: parse_flag(args, "--max-batch", 64)?,
        max_delay: std::time::Duration::from_micros(max_delay_us),
        queue_cap: parse_flag(args, "--queue-cap", 1024)?,
        threshold: if threshold.is_nan() {
            None
        } else {
            Some(threshold)
        },
        quantile: parse_flag(args, "--quantile", 0.95)?,
        calibrate: parse_flag(args, "--calibrate", 512)?,
        watch: args
            .iter()
            .any(|a| a == "--watch")
            .then(|| std::time::Duration::from_millis(watch_interval_ms.max(10))),
        mirror: mirror.clone(),
        score_f32: args.iter().any(|a| a == "--score-f32"),
        telemetry: !args.iter().any(|a| a == "--no-telemetry"),
    };
    // Make sure the counters the server records are live so a
    // CND_OBS_LISTEN /metrics scrape always sees them.
    if !cnd_obs::enabled() {
        cnd_obs::reset(cnd_obs::ClockKind::Wall);
        cnd_obs::set_enabled(true);
    }
    let server = Server::start(model_path, &addr, cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "serving {model_path} (model v{}) on {} — protocol v{}",
        server.model_version(),
        server.local_addr(),
        cnd_serve::protocol::PROTOCOL_VERSION
    );

    let mut controller = match (bootstrap, mirror) {
        (Some((model, val)), Some(mirror)) => {
            let ccfg = ContinualConfig {
                drift_window: parse_flag(args, "--drift-window", 256)?,
                min_retrain_samples: parse_flag(args, "--min-retrain", 256)?,
                probation_samples: parse_flag(args, "--probation", 128)?,
                ..ContinualConfig::default()
            };
            let mut c =
                ContinualController::new(ccfg, model, val, mirror).map_err(|e| e.to_string())?;
            // Forensics: mirror every lifecycle disposition to an
            // append-only hash-chained ledger, and arm the crash
            // flight recorder so a panic or watchdog rollback leaves
            // a postmortem dump behind.
            let ledger_path = parse_flag::<String>(args, "--ledger", String::new())?;
            if !ledger_path.is_empty() {
                c.set_ledger_path(std::path::Path::new(&ledger_path))
                    .map_err(|e| format!("--ledger {ledger_path}: {e}"))?;
                eprintln!("provenance ledger at {ledger_path}");
            }
            let flight_path = parse_flag::<String>(args, "--flight-dump", String::new())?;
            if !flight_path.is_empty() {
                cnd_obs::flight::set_dump_path(Some(std::path::Path::new(&flight_path)));
                eprintln!("flight recorder dumps to {flight_path}");
            }
            cnd_obs::flight::install_panic_hook();
            eprintln!(
                "continual loop armed: drift window {}, min retrain {}, probation {}",
                parse_flag::<usize>(args, "--drift-window", 256)?,
                parse_flag::<usize>(args, "--min-retrain", 256)?,
                parse_flag::<usize>(args, "--probation", 128)?,
            );
            Some(c)
        }
        _ => None,
    };

    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(if controller.is_some() {
            100
        } else {
            200
        }));
        if let Some(c) = controller.as_mut() {
            for event in c.step(&server) {
                eprintln!("continual: {event}");
            }
        }
        if runtime_s > 0 && started.elapsed() >= std::time::Duration::from_secs(runtime_s) {
            break;
        }
    }
    if let Some(c) = controller.as_ref() {
        let s = c.stats();
        eprintln!(
            "continual loop: {} samples mirrored ({} poisoned), {} drift detections, {} retrains ({} panics, {} failures), {} shadow rejects, {} swaps ({} refused), {} rollbacks, {} probation passes; state {}",
            s.samples_seen,
            s.poisoned_rejected,
            s.drift_detections,
            s.retrains_started,
            s.trainer_panics,
            s.trainer_failures,
            s.shadow_rejects,
            s.swaps,
            s.swap_refusals,
            s.rollbacks,
            s.probation_passes,
            c.state_name()
        );
    }
    let stats = server.shutdown();
    if let Some(m) = &mirror_handle {
        if let Some(meta) = m.finish_spill() {
            eprintln!(
                "mirror spill finalized: {} evicted flows persisted",
                meta.count
            );
        }
    }
    eprintln!(
        "served {} flows in {} batches (accepted {}, shed {}, bad frames {}, reloads {}); final model v{}",
        stats.scored,
        stats.batches,
        stats.accepted,
        stats.shed,
        stats.bad_frames,
        stats.reloads,
        stats.model_version
    );
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<ExitCode, String> {
    use cnd_obs::baseline::extract_metrics;
    use cnd_serve::{run_loadgen, LoadGenConfig};
    use std::net::ToSocketAddrs as _;

    let addr_str = args.first().ok_or("loadgen: missing <addr>")?;
    let addr = addr_str
        .to_socket_addrs()
        .map_err(|e| format!("loadgen: bad address {addr_str:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("loadgen: address {addr_str:?} resolved to nothing"))?;
    let cfg = LoadGenConfig {
        flows: parse_flag(args, "--flows", 5000)?,
        concurrency: parse_flag(args, "--concurrency", 4)?,
        rate: parse_flag(args, "--rate", 0.0)?,
        seed: parse_flag(args, "--seed", 1)?,
        reload_midway: args.iter().any(|a| a == "--reload-midway"),
    };
    let tag: String = parse_flag(args, "--tag", "serve".to_string())?;
    let out: String = parse_flag(args, "--out", "BENCH_serve.json".to_string())?;

    let report = run_loadgen(addr, &cfg).map_err(|e| e.to_string())?;
    println!(
        "sent {} flows in {:.2}s -> {:.0} flows/s (ok {}, shed {}, bad {}, transport errors {})",
        report.sent,
        report.elapsed_s,
        report.flows_per_s,
        report.ok,
        report.shed,
        report.bad_request,
        report.transport_errors
    );
    println!("{}", report.latency_summary());
    println!(
        "accept ratio = {:.3}  alerts = {}",
        report.accept_ratio(),
        report.alerts
    );
    if report.reconnects_per_worker.iter().any(|&r| r > 0) {
        println!("reconnects per worker: {:?}", report.reconnects_per_worker);
    }
    if let Some(v) = report.reload_version {
        println!(
            "midway hot-swap -> model v{v}; versions seen in replies: {:?}",
            report.versions_seen
        );
    }

    // Merge with an existing report when --append is given, so batched
    // and single-row runs can share one bench-check artifact.
    let mut metrics = std::collections::BTreeMap::new();
    if args.iter().any(|a| a == "--append") {
        if let Ok(text) = std::fs::read_to_string(&out) {
            metrics = extract_metrics(&text).map_err(|e| format!("{out}: {e}"))?;
        }
    }
    for (name, value) in report.bench_metrics(&tag) {
        metrics.insert(name, value);
    }
    let mut json = String::from("{\n  \"benchcheck\": 1,\n  \"metrics\": {\n");
    let n = metrics.len();
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("bench report written to {out}");

    if report.transport_errors > 0 {
        eprintln!(
            "loadgen: {} accepted requests lost",
            report.transport_errors
        );
        return Ok(ExitCode::FAILURE);
    }
    if report.ok == 0 {
        eprintln!("loadgen: no flows were scored");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_observe(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("observe: missing <trace.jsonl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines =
        cnd_obs::trace::validate_jsonl(&text).map_err(|e| format!("{path}: invalid trace: {e}"))?;
    let report = cnd_obs::phase_report(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "trace: {path} ({lines} lines, schema v{})",
        cnd_obs::trace::TRACE_VERSION
    );
    if args.iter().any(|a| a == "--timeline") {
        // Causal timeline: continual-loop events grouped by cycle id
        // into detect → retrain → validate → swap → probation chains.
        let tl = cnd_obs::timeline_report(&text).map_err(|e| format!("{path}: {e}"))?;
        if tl.chains.is_empty() {
            println!("no continual events in this trace");
        } else {
            print!("{}", tl.render());
        }
        return Ok(());
    }
    if args.iter().any(|a| a == "--latency") {
        // Latency-breakdown report: every hdr metric in the trace
        // (per-stage serving latencies, reload times, ...) as a
        // count/mean/percentile table.
        let lat = cnd_obs::latency_report(&text).map_err(|e| format!("{path}: {e}"))?;
        if lat.rows.is_empty() {
            println!("no hdr latency metrics in this trace");
        } else {
            print!("{}", lat.render());
        }
        return Ok(());
    }
    match args.iter().position(|a| a == "--top") {
        None => print!("{}", report.render()),
        Some(i) => {
            // --top takes an optional count; default to the ten hottest spans.
            let limit = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v
                    .parse()
                    .map_err(|_| format!("invalid value for --top: {v:?}"))?,
                _ => 10,
            };
            print!("{}", report.render_top(limit));
        }
    }
    Ok(())
}

fn cmd_bench_check(args: &[String]) -> Result<ExitCode, String> {
    use cnd_obs::baseline::{compare, extract_metrics, render_baseline};

    let current_path = args.first().ok_or("bench-check: missing <current>")?;
    let baseline_path = match parse_flag::<String>(args, "--baseline", String::new())? {
        s if s.is_empty() => {
            let stem = std::path::Path::new(current_path)
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| {
                    format!("bench-check: cannot derive a stem from {current_path:?}")
                })?;
            std::path::PathBuf::from("baselines").join(format!("{stem}.json"))
        }
        s => std::path::PathBuf::from(s),
    };
    let text = std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let current = extract_metrics(&text).map_err(|e| format!("{current_path}: {e}"))?;

    if args.iter().any(|a| a == "--update") {
        if let Some(dir) = baseline_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        std::fs::write(&baseline_path, render_baseline(&current))
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        eprintln!(
            "baseline updated: {} ({} metrics)",
            baseline_path.display(),
            current.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let tolerance = match parse_flag::<f64>(args, "--tolerance", f64::NAN)? {
        t if t.is_nan() => None,
        t if t >= 0.0 => Some(t),
        t => return Err(format!("--tolerance must be >= 0, got {t}")),
    };
    let base_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "{}: {e} (run `cnd-ids-cli bench-check {current_path} --update` to create it)",
            baseline_path.display()
        )
    })?;
    let baseline =
        extract_metrics(&base_text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    let report = compare(&current, &baseline, tolerance);
    print!("{}", report.render());
    if report.passed {
        Ok(ExitCode::SUCCESS)
    } else {
        // A genuine regression is not a usage error: report it plainly
        // (no usage blurb) and let CI fail on the exit code.
        eprintln!(
            "bench-check: regression against {}",
            baseline_path.display()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_score(args: &[String]) -> Result<(), String> {
    let model_path = args.first().ok_or("score: missing <model.txt>")?;
    let data_path = args.get(1).ok_or("score: missing <data.csv|data.cnds>")?;
    let quantile: f64 = parse_flag(args, "--quantile", 0.95)?;
    let scorer = DeployedScorer::load_from_path(model_path).map_err(|e| e.to_string())?;
    let scores = if is_store_path(data_path) {
        // Out-of-core: stream the store one chunk at a time. Scoring is
        // row-independent, so the scores (and therefore the printed
        // output) are byte-identical to the in-memory CSV path.
        let store = cnd_store::FlowStore::open(data_path).map_err(|e| e.to_string())?;
        if store.meta().dim != scorer.n_features() {
            return Err(format!(
                "model expects {} features but store has {}",
                scorer.n_features(),
                store.meta().dim
            ));
        }
        let chunk_rows: usize = parse_flag(args, "--chunk-rows", cnd_store::default_chunk_rows())?;
        let mut scores = Vec::with_capacity(store.len() as usize);
        let chunks = store.chunks(chunk_rows).map_err(|e| e.to_string())?;
        for part in scorer.score_chunks(chunks) {
            scores.extend(part.map_err(|e| e.to_string())?.scores);
        }
        scores
    } else {
        let data = loader::read_csv(data_path, false).map_err(|e| e.to_string())?;
        if data.n_features() != scorer.n_features() {
            return Err(format!(
                "model expects {} features but data has {}",
                scorer.n_features(),
                data.n_features()
            ));
        }
        scorer.anomaly_scores(&data.x).map_err(|e| e.to_string())?
    };
    // Calibrate on the lower bulk of the scored data itself (no labels).
    let tau = quantile_threshold(&scores, quantile).map_err(|e| e.to_string())?;
    let alerts = apply_threshold(&scores, tau);
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    for (s, a) in scores.iter().zip(&alerts) {
        writeln!(w, "{s:.6}\t{}", if *a != 0 { "ALERT" } else { "ok" })
            .map_err(|e| e.to_string())?;
    }
    let n_alerts: usize = alerts.iter().map(|&a| a as usize).sum();
    eprintln!("{n_alerts}/{} flows flagged (tau = {tau:.4})", alerts.len());
    Ok(())
}
