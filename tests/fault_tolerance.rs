//! End-to-end fault-tolerance tests for the resilient streaming
//! pipeline (`cnd_core::resilience`), driven through the public API
//! exactly as a deployment would: seeded fault injection, deterministic
//! assertions, and finite scoring throughout every recovery path.

use cnd_core::deploy::DeployedScorer;
use cnd_core::resilience::{
    GuardConfig, Mode, ResilientConfig, ResilientEvent, ResilientStreamingCndIds, RetryPolicy,
    ScriptedFaults,
};
use cnd_core::streaming::StreamingConfig;
use cnd_core::{CndIds, CndIdsConfig, CoreError};
use cnd_datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_linalg::Matrix;

/// A small continual split of the synthetic X-IIoTID replica.
fn split() -> continual::ContinualSplit {
    let data = DatasetProfile::XIiotId
        .generate(&GeneratorConfig::small(11))
        .expect("generates");
    continual::prepare(&data, 3, 0.7, 11).expect("splits")
}

fn pipeline(split: &continual::ContinualSplit, retry: RetryPolicy) -> ResilientStreamingCndIds {
    let model = CndIds::new(CndIdsConfig::fast(11), &split.clean_normal).expect("builds");
    ResilientStreamingCndIds::new(
        model,
        ResilientConfig {
            streaming: StreamingConfig {
                max_buffer: 400,
                bootstrap_batch: 200,
                min_batch: 100,
                drift_window: 50,
                drift_threshold: 3.0,
                reservoir_seed: 42,
            },
            guard: GuardConfig::default(),
            retry,
        },
    )
    .expect("valid config")
}

/// Asserts every score is finite; returns the scores.
fn assert_finite_scores(p: &ResilientStreamingCndIds, x: &Matrix) -> Vec<f64> {
    let scores = p.anomaly_scores(x).expect("scoring works");
    assert_eq!(scores.len(), x.rows());
    for (i, s) in scores.iter().enumerate() {
        assert!(s.is_finite(), "score {i} not finite: {s}");
    }
    scores
}

/// Path 1: corrupted input flows are quarantined by the input guard,
/// counted by reason, and never reach training or scoring.
#[test]
fn corrupted_input_is_quarantined() {
    let s = split();
    let mut p = pipeline(&s, RetryPolicy::default());
    p.set_fault_injector(Box::new(ScriptedFaults::new(1).with_corruption_rate(0.1)));
    for exp in &s.experiences {
        let n = exp.train_x.rows().min(600);
        let mut at = 0;
        while at < n {
            let hi = (at + 100).min(n);
            let x = exp.train_x.slice_rows(at, hi).unwrap();
            p.push_flows(&x).expect("push never errors on bad input");
            at = hi;
        }
    }
    let h = p.health();
    assert!(
        h.quarantine.total() > 0,
        "10% corruption must quarantine flows"
    );
    assert!(
        h.quarantine.non_finite > 0,
        "NaN/Inf faults must be classified"
    );
    assert_eq!(
        h.flows_seen,
        h.flows_accepted + h.quarantine.total(),
        "every flow is either accepted or quarantined"
    );
    assert!(h.experiences_trained > 0, "pipeline must still train");
    assert_eq!(h.mode, Mode::Normal);
    assert_finite_scores(&p, &s.experiences[0].test_x);
}

/// Path 2: an injected NaN loss trips the CFE divergence watchdog; the
/// model is rolled back and scoring stays bit-identical to the
/// pre-failure state.
#[test]
fn nan_loss_triggers_rollback() {
    let s = split();
    let mut p = pipeline(
        &s,
        RetryPolicy {
            max_attempts: 3,
            backoff_base_flows: 100,
            max_backoff_flows: 1_000,
        },
    );
    // Healthy bootstrap (attempt 1).
    let boot = s.experiences[0].train_x.slice_rows(0, 200).unwrap();
    assert!(matches!(
        p.push_flows(&boot).unwrap(),
        ResilientEvent::ExperienceTrained { .. }
    ));
    let probe = s.experiences[0].test_x.slice_rows(0, 50).unwrap();
    let before = assert_finite_scores(&p, &probe);

    // Attempt 2 is poisoned: NaN loss -> divergence -> rollback.
    p.set_fault_injector(Box::new(ScriptedFaults::new(2).with_nan_loss_at(&[2])));
    let mut failed = false;
    for chunk in 0..8 {
        let lo = 200 + chunk * 100;
        let x = s.experiences[0].train_x.slice_rows(lo, lo + 100).unwrap();
        if let ResilientEvent::TrainingFailed { failure, mode, .. } = p.push_flows(&x).unwrap() {
            assert!(failure.contains("diverged"), "failure = {failure}");
            assert_eq!(mode, Mode::Normal, "a single failure must not degrade");
            failed = true;
            break;
        }
    }
    assert!(failed, "the poisoned attempt must fail");
    let h = p.health();
    assert_eq!(h.rollbacks, 1);
    assert_eq!(h.consecutive_failures, 1);
    assert!(h.flows_until_retry > 0, "backoff must arm after a failure");
    // Rollback means scoring is exactly the pre-failure snapshot.
    assert_eq!(assert_finite_scores(&p, &probe), before);
}

/// Path 3+4: repeated failures exhaust the retry budget, the pipeline
/// enters degraded mode (still scoring on the last-known-good snapshot),
/// and a later successful retrain recovers it to normal.
#[test]
fn retry_exhaustion_degrades_then_recovers() {
    let s = split();
    let mut p = pipeline(
        &s,
        RetryPolicy {
            max_attempts: 2,
            backoff_base_flows: 50,
            max_backoff_flows: 100,
        },
    );
    // Healthy bootstrap (attempt 1).
    let boot = s.experiences[0].train_x.slice_rows(0, 200).unwrap();
    assert!(matches!(
        p.push_flows(&boot).unwrap(),
        ResilientEvent::ExperienceTrained { .. }
    ));
    let probe = s.experiences[1].test_x.slice_rows(0, 50).unwrap();
    let baseline = assert_finite_scores(&p, &probe);

    // Attempts 2 and 3 fail -> degraded; attempt 4 succeeds -> recovery.
    p.set_fault_injector(Box::new(ScriptedFaults::new(3).with_failure_at(&[2, 3])));
    let mut saw_degraded = false;
    let mut recovered = false;
    'outer: for exp in &s.experiences {
        let n = exp.train_x.rows();
        let mut at = 0;
        while at < n {
            let hi = (at + 50).min(n);
            let x = exp.train_x.slice_rows(at, hi).unwrap();
            at = hi;
            match p.push_flows(&x).unwrap() {
                ResilientEvent::TrainingFailed { mode, .. } => {
                    if mode == Mode::Degraded {
                        saw_degraded = true;
                        assert_eq!(p.mode(), Mode::Degraded);
                        // Degraded mode keeps scoring, identically to the
                        // last-known-good snapshot, and stays finite.
                        assert_eq!(assert_finite_scores(&p, &probe), baseline);
                    }
                }
                ResilientEvent::ExperienceTrained { recovered: r, .. } => {
                    if saw_degraded {
                        assert!(r, "success out of degraded mode must flag recovery");
                        recovered = true;
                        break 'outer;
                    }
                }
                ResilientEvent::Buffered { .. } => {}
            }
        }
    }
    assert!(saw_degraded, "exhausting max_attempts must degrade");
    assert!(recovered, "a later successful retrain must recover");
    assert_eq!(p.mode(), Mode::Normal);
    assert_eq!(p.health().total_failures, 2);
    assert_finite_scores(&p, &probe);
}

/// Path 5a: scoring a batch containing invalid rows yields the finite
/// quarantine sentinel for those rows, never NaN/Inf.
#[test]
fn invalid_rows_score_as_finite_sentinel() {
    let s = split();
    let mut p = pipeline(&s, RetryPolicy::default());
    let boot = s.experiences[0].train_x.slice_rows(0, 200).unwrap();
    p.push_flows(&boot).unwrap();
    assert!(p.can_score());

    let mut rows: Vec<Vec<f64>> = s.experiences[0]
        .test_x
        .slice_rows(0, 6)
        .unwrap()
        .iter_rows()
        .map(<[f64]>::to_vec)
        .collect();
    rows[0][0] = f64::NAN;
    rows[2][1] = f64::INFINITY;
    rows[4][0] = 1e30;
    let x = Matrix::from_rows(&rows).unwrap();
    let scores = assert_finite_scores(&p, &x);
    let sentinel = GuardConfig::default().quarantine_score;
    for i in [0, 2, 4] {
        assert_eq!(scores[i], sentinel, "invalid row {i} must get the sentinel");
    }
    for i in [1, 3, 5] {
        assert!(scores[i] < sentinel, "valid row {i} must get a real score");
    }
}

/// Path 5b: corrupted scorer artifacts fail to load with the typed
/// error; the live pipeline is unaffected.
#[test]
fn corrupted_scorer_artifacts_are_rejected() {
    let s = split();
    let mut p = pipeline(&s, RetryPolicy::default());
    let boot = s.experiences[0].train_x.slice_rows(0, 200).unwrap();
    p.push_flows(&boot).unwrap();

    let scorer = p.model().freeze().expect("trained model freezes");
    let mut buf = Vec::new();
    scorer.save(&mut buf).unwrap();

    // Round trip works.
    let restored = DeployedScorer::load(buf.as_slice()).expect("round trip");
    let probe = s.experiences[0].test_x.slice_rows(0, 20).unwrap();
    assert_eq!(
        scorer.anomaly_scores(&probe).unwrap(),
        restored.anomaly_scores(&probe).unwrap()
    );

    // Truncation, garbage and header corruption all yield the typed
    // error, never a panic.
    let corruptions: Vec<Vec<u8>> = vec![
        buf[..buf.len() / 3].to_vec(),
        b"garbage".to_vec(),
        {
            let mut c = buf.clone();
            c[0] = b'X'; // break the magic line
            c
        },
        {
            let text = String::from_utf8(buf.clone()).unwrap();
            text.replacen("scaler", "scaler 999999999999", 1)
                .into_bytes()
        },
    ];
    for (i, c) in corruptions.iter().enumerate() {
        match DeployedScorer::load(c.as_slice()) {
            Err(CoreError::CorruptModel { .. }) => {}
            other => panic!("corruption {i} must be CorruptModel, got {other:?}"),
        }
    }
    // The live pipeline still scores finite values afterwards.
    assert_finite_scores(&p, &probe);
}
