//! Control-plane forensics e2e: a fault-injected continual run must be
//! fully reconstructable after the fact from the provenance ledger and
//! the `observe --timeline` view alone — every `ContinualEvent` carries
//! a cycle id that resolves to hash-chained ledger entries, and an
//! injected trainer panic leaves a schema-valid crash flight dump
//! behind.
//!
//! The artifacts written under `target/forensics/` are re-validated by
//! the CI `forensics-smoke` job with the real `obs-schema-check`
//! binary (`--require-provenance`) and `observe --timeline`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cnd_ids::core::deploy::DeployedScorer;
use cnd_ids::core::resilience::{RetryPolicy, ScriptedFaults};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::linalg::Matrix;
use cnd_ids::obs;
use cnd_ids::obs::ledger::Disposition;
use cnd_ids::serve::{
    ContinualConfig, ContinualController, ContinualEvent, Reply, ServeClient, ServeConfig, Server,
    TrafficMirror, ValidationSet,
};

const D: usize = 6;

fn base(i: usize, j: usize, seed: u64) -> f64 {
    ((i * 7 + j * 3 + seed as usize) % 13) as f64 * 0.1
}

fn traffic(n: usize, offset: f64, phase: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..D).map(|j| base(i + phase, j, seed) + offset).collect())
        .collect()
}

fn bootstrap(seed: u64) -> (CndIds, ValidationSet) {
    let n_c = Matrix::from_fn(60, D, |i, j| base(i, j, seed));
    let train = Matrix::from_fn(300, D, |i, j| {
        if i < 240 {
            base(i + 100, j, seed)
        } else {
            base(i + 100, j, seed) + 2.5
        }
    });
    let mut model = CndIds::new(CndIdsConfig::fast(seed), &n_c).expect("model builds");
    model.train_experience(&train).expect("model trains");
    let val_x = Matrix::from_fn(90, D, |i, j| {
        if i < 60 {
            base(i + 400, j, seed)
        } else {
            base(i + 400, j, seed) + 6.0
        }
    });
    let mut y = vec![0u8; 60];
    y.extend(vec![1u8; 30]);
    let val = ValidationSet::new(val_x, y).expect("validation set");
    (model, val)
}

struct TempArtifact(PathBuf);

static UNIQUE: AtomicU64 = AtomicU64::new(0);

impl TempArtifact {
    fn new(tag: &str, scorer: &DeployedScorer) -> TempArtifact {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "cnd_forensics_{tag}_{}_{n}.txt",
            std::process::id()
        ));
        scorer.save_to_path(&path).expect("artifact saves");
        TempArtifact(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

struct Harness {
    server: Server,
    controller: ContinualController,
    client: ServeClient,
    _artifact: TempArtifact,
    events: Vec<ContinualEvent>,
}

fn harness(tag: &str, seed: u64, faults: ScriptedFaults) -> Harness {
    let (model, val) = bootstrap(seed);
    let original = model.freeze().expect("freezes");
    let artifact = TempArtifact::new(tag, &original);
    let mirror = TrafficMirror::new(4096);
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(1),
            queue_cap: 4096,
            mirror: Some(mirror.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let cfg = ContinualConfig {
        drift_window: 64,
        min_retrain_samples: 64,
        max_train_samples: 512,
        probation_samples: 48,
        probation_quantile: 0.95,
        probation_max_alert_rate: 0.5,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_flows: 32,
            max_backoff_flows: 128,
        },
        ..ContinualConfig::default()
    };
    let mut controller =
        ContinualController::new(cfg, model, val, mirror).expect("controller builds");
    controller.set_fault_injector(Box::new(faults));
    let client = ServeClient::connect(server.local_addr()).expect("client connects");
    Harness {
        server,
        controller,
        client,
        _artifact: artifact,
        events: Vec::new(),
    }
}

impl Harness {
    fn send(&mut self, rows: &[Vec<f64>]) {
        for row in rows {
            match self.client.score(row).expect("transport ok") {
                Reply::Score { .. } => {}
                other => panic!("expected a score reply, got {other:?}"),
            }
        }
    }

    fn pump(&mut self) {
        let evs = self.controller.step(&self.server);
        self.events.extend(evs);
    }

    fn drive(&mut self, rows: Vec<Vec<f64>>) {
        for chunk in rows.chunks(32) {
            self.send(chunk);
            std::thread::sleep(Duration::from_millis(5));
            self.pump();
        }
    }

    fn await_trainer(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.controller.state_name() == "retraining" {
            assert!(Instant::now() < deadline, "trainer never finished");
            std::thread::sleep(Duration::from_millis(10));
            self.pump();
        }
    }

    fn drive_to_retrain(&mut self, seed: u64) {
        self.drive(traffic(192, 0.0, 0, seed));
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut phase = 0;
        while self.controller.stats().retrains_started == 0 {
            assert!(Instant::now() < deadline, "drift never triggered a retrain");
            self.drive(traffic(64, 1.5, 5000 + phase, seed));
            phase += 64;
        }
    }

    fn drive_probation(&mut self, seed: u64) {
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut phase = 0;
        while self.controller.state_name() == "probation" {
            assert!(Instant::now() < deadline, "probation never resolved");
            self.drive(traffic(32, 1.5, 9000 + phase, seed));
            phase += 32;
        }
    }
}

fn forensics_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("forensics");
    std::fs::create_dir_all(&dir).expect("forensics dir");
    dir
}

/// A degraded-weights canary (swap then probation rollback) must be
/// fully reconstructable from the ledger + timeline: exactly one swap
/// and one rollback attributed to the cycle, hash chain intact, and
/// every emitted event's cycle id resolving to ledger entries.
#[test]
fn degraded_swap_and_rollback_reconstruct_from_ledger_and_timeline() {
    let _session = obs::Session::wall();
    obs::flight::reset();
    let dir = forensics_dir();
    let ledger_path = dir.join("continual_ledger.jsonl");
    let trace_path = dir.join("continual_trace.jsonl");

    let seed = 11;
    let faults = ScriptedFaults::new(seed).with_artifact_degraded_at(&[1]);
    let mut h = harness("degraded", seed, faults);
    h.controller
        .set_ledger_path(&ledger_path)
        .expect("ledger attaches");

    h.drive_to_retrain(seed);
    h.await_trainer();
    assert_eq!(h.controller.stats().swaps, 1);
    h.drive_probation(seed);
    assert_eq!(h.controller.stats().rollbacks, 1);

    // Every event belongs to the one minted cycle, and that cycle
    // resolves to ledger entries.
    assert!(!h.events.is_empty());
    for e in &h.events {
        assert_eq!(e.cycle(), 1, "event outside the armed cycle: {e}");
        assert!(
            !h.controller.ledger().cycle_entries(e.cycle()).is_empty(),
            "cycle {} resolves to no ledger entry",
            e.cycle()
        );
    }

    // The on-disk mirror and the in-memory ledger agree, the hash chain
    // verifies, and the cycle's dispositions are exactly one swap
    // followed by one rollback.
    let text = std::fs::read_to_string(&ledger_path).expect("ledger readable");
    assert_eq!(text, h.controller.ledger().to_jsonl());
    let entries = obs::ledger::verify(&text).expect("hash chain verifies");
    let kinds: Vec<Disposition> = entries
        .iter()
        .filter(|e| e.cycle == 1)
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![Disposition::Swapped, Disposition::RolledBack],
        "cycle 1 must be exactly swap -> rollback"
    );
    let swap = entries
        .iter()
        .find(|e| e.kind == Disposition::Swapped)
        .expect("swap entry");
    assert!(swap.drift.is_some(), "swap records its drift verdict");
    assert!(swap.samples.is_some(), "swap records sample provenance");
    assert!(swap.shadow.is_some(), "swap records the shadow gate result");
    assert_eq!(swap.version, 2);
    assert_eq!(swap.parent, 1, "candidate's parent is the bootstrap model");

    // A truncated tail (lost final entry) is detectable: the surviving
    // prefix still verifies but its head hash differs from the full
    // chain's, so a recorded head hash pins the complete history.
    let full_head = entries.last().expect("entries").hash;
    let truncated: Vec<&str> = text.lines().take(text.lines().count() - 1).collect();
    let truncated_entries =
        obs::ledger::verify(&(truncated.join("\n") + "\n")).expect("prefix verifies");
    assert_ne!(truncated_entries.last().expect("prefix").hash, full_head);

    // The trace's causal timeline renders the full chain for cycle 1 in
    // time order: detect -> retrain -> swap -> rollback.
    obs::write_jsonl(&trace_path).expect("trace writes");
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace readable");
    let tl = obs::timeline_report(&trace_text).expect("timeline parses");
    let chain = tl.chain(1).expect("cycle 1 chain present");
    let stages: Vec<&str> = chain.stages.iter().map(|s| s.kind.as_str()).collect();
    assert_eq!(
        stages,
        vec![
            "drift_detected",
            "retrain_started",
            "swapped",
            "rolled_back"
        ],
        "timeline must reconstruct the causal chain"
    );
    let rendered = tl.render();
    assert!(rendered.contains("cycle 1"));
    assert!(rendered.contains("rolled_back"));

    let stats = h.server.shutdown();
    assert_eq!(stats.shed, 0);
}

/// An injected trainer panic must leave a schema-valid flight dump at
/// the configured path, carrying cycle-attributed continual events
/// recorded before the crash.
#[test]
fn trainer_panic_writes_schema_valid_flight_dump() {
    let _session = obs::Session::wall();
    obs::flight::reset();
    let dir = forensics_dir();
    let dump_path = dir.join("flight_dump.jsonl");
    let _ = std::fs::remove_file(&dump_path);
    obs::flight::set_dump_path(Some(&dump_path));
    obs::flight::install_panic_hook();

    let seed = 7;
    let faults = ScriptedFaults::new(seed).with_panic_at(&[1]);
    let mut h = harness("panic", seed, faults);
    h.drive_to_retrain(seed);
    h.await_trainer();
    assert_eq!(h.controller.stats().trainer_panics, 1);
    assert!(h
        .events
        .iter()
        .any(|e| matches!(e, ContinualEvent::TrainerFailed { cycle: 1, .. })));

    // The panic hook fired inside the trainer thread and dumped the
    // ring; the dump passes schema validation and names the cause.
    let text = std::fs::read_to_string(&dump_path).expect("flight dump written");
    let (cause, events) = obs::flight::validate_flight(&text).expect("dump validates");
    assert!(
        cause.contains("injected trainer panic"),
        "cause is the panic message: {cause}"
    );
    assert!(events > 0);
    // Pre-crash continual events carry their cycle id, so the dump is
    // attributable to the cycle that crashed.
    assert!(
        text.lines().any(|l| l.contains("\"cycle\":1")),
        "dump carries cycle-attributed events"
    );

    obs::flight::set_dump_path(None);
    let stats = h.server.shutdown();
    assert_eq!(stats.shed, 0);
}
