//! End-to-end test of the `cnd-ids-cli` binary: generate → train →
//! score, exercising the full deployment path through the real
//! command-line interface.

use std::path::PathBuf;
use std::process::Command;

/// Path to the compiled CLI binary within the cargo target directory.
fn cli() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_BIN_EXE_cnd-ids-cli"));
    assert!(p.exists(), "CLI binary missing at {}", p.display());
    p = p.canonicalize().expect("canonical path");
    p
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cnd_ids_cli_test_{name}"))
}

#[test]
fn generate_train_score_pipeline() {
    let csv = tmp("data.csv");
    let model = tmp("model.txt");

    // generate
    let out = Command::new(cli())
        .args([
            "generate",
            "WUSTL-IIoT",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "5",
            "--samples",
            "3000",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    // train
    let out = Command::new(cli())
        .args([
            "train",
            csv.to_str().expect("utf8 path"),
            model.to_str().expect("utf8 path"),
            "--seed",
            "5",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    let header = std::fs::read_to_string(&model).expect("model readable");
    assert!(header.starts_with("CND-IDS-SCORER v1"));

    // score
    let out = Command::new(cli())
        .args([
            "score",
            model.to_str().expect("utf8 path"),
            csv.to_str().expect("utf8 path"),
            "--quantile",
            "0.95",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "score failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3000, "one score per input row");
    assert!(lines.iter().any(|l| l.ends_with("ALERT")));
    assert!(lines.iter().any(|l| l.ends_with("ok")));

    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn stream_subcommand_reports_health() {
    let csv = tmp("stream_data.csv");
    let out = Command::new(cli())
        .args([
            "generate",
            "WUSTL-IIoT",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "7",
            "--samples",
            "3000",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(cli())
        .args([
            "stream",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "7",
            "--fault-rate",
            "0.05",
            "--health",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pooled best-F F1"), "stdout: {stdout}");
    assert!(stdout.contains("health report:"), "stdout: {stdout}");
    assert!(stdout.contains("mode:"), "stdout: {stdout}");
    // The health report must expose every quarantine counter, including
    // the eviction/drift lines added with the observability layer.
    assert!(stdout.contains("quarantined"), "stdout: {stdout}");
    assert!(stdout.contains("nan/inf"), "stdout: {stdout}");
    assert!(stdout.contains("evicted"), "stdout: {stdout}");
    assert!(stdout.contains("drift-rejected"), "stdout: {stdout}");

    let out = Command::new(cli())
        .args([
            "stream",
            csv.to_str().expect("utf8 path"),
            "--fault-rate",
            "2.0",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        !out.status.success(),
        "out-of-range fault rate must be rejected"
    );

    std::fs::remove_file(&csv).ok();
}

#[test]
fn trace_out_then_observe_round_trip() {
    let csv = tmp("trace_data.csv");
    let trace = tmp("trace.jsonl");
    let out = Command::new(cli())
        .args([
            "generate",
            "WUSTL-IIoT",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "11",
            "--samples",
            "1500",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `--trace-out` must enable tracing on its own (no CND_OBS needed).
    let out = Command::new(cli())
        .env_remove("CND_OBS")
        .env_remove("CND_OBS_OUT")
        .args([
            "run",
            csv.to_str().expect("utf8 path"),
            "--experiences",
            "2",
            "--seed",
            "11",
            "--trace-out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "run --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&trace).expect("trace written");
    assert!(jsonl.starts_with("{\"ev\":\"meta\""), "first line is meta");
    for span in ["runner.train", "runner.score", "cfe.train", "pca.fit"] {
        assert!(jsonl.contains(span), "trace missing span {span}");
    }

    let out = Command::new(cli())
        .args(["observe", trace.to_str().expect("utf8 path")])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "observe failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase breakdown"), "stdout: {stdout}");
    assert!(stdout.contains("runner.evaluate"), "stdout: {stdout}");
    assert!(stdout.contains("cfe.train"), "stdout: {stdout}");

    // A corrupt trace must be rejected with a non-zero exit.
    std::fs::write(&trace, "not json\n").expect("overwrite trace");
    let out = Command::new(cli())
        .args(["observe", trace.to_str().expect("utf8 path")])
        .output()
        .expect("CLI runs");
    assert!(!out.status.success(), "corrupt trace must be rejected");

    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn profiles_subcommand_lists_all() {
    let out = Command::new(cli())
        .arg("profiles")
        .output()
        .expect("CLI runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["X-IIoTID", "WUSTL-IIoT", "CICIDS2017", "UNSW-NB15"] {
        assert!(stdout.contains(name), "missing profile {name}");
    }
}

#[test]
fn bad_usage_fails_with_message() {
    let out = Command::new(cli()).arg("bogus").output().expect("CLI runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("usage:"));
}
