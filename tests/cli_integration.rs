//! End-to-end test of the `cnd-ids-cli` binary: generate → train →
//! score, exercising the full deployment path through the real
//! command-line interface.

use std::path::PathBuf;
use std::process::Command;

/// Path to the compiled CLI binary within the cargo target directory.
fn cli() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_BIN_EXE_cnd-ids-cli"));
    assert!(p.exists(), "CLI binary missing at {}", p.display());
    p = p.canonicalize().expect("canonical path");
    p
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cnd_ids_cli_test_{name}"))
}

#[test]
fn generate_train_score_pipeline() {
    let csv = tmp("data.csv");
    let model = tmp("model.txt");

    // generate
    let out = Command::new(cli())
        .args([
            "generate",
            "WUSTL-IIoT",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "5",
            "--samples",
            "3000",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    // train
    let out = Command::new(cli())
        .args([
            "train",
            csv.to_str().expect("utf8 path"),
            model.to_str().expect("utf8 path"),
            "--seed",
            "5",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    let header = std::fs::read_to_string(&model).expect("model readable");
    assert!(header.starts_with("CND-IDS-SCORER v1"));

    // score
    let out = Command::new(cli())
        .args([
            "score",
            model.to_str().expect("utf8 path"),
            csv.to_str().expect("utf8 path"),
            "--quantile",
            "0.95",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "score failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3000, "one score per input row");
    assert!(lines.iter().any(|l| l.ends_with("ALERT")));
    assert!(lines.iter().any(|l| l.ends_with("ok")));

    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn stream_subcommand_reports_health() {
    let csv = tmp("stream_data.csv");
    let out = Command::new(cli())
        .args([
            "generate",
            "WUSTL-IIoT",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "7",
            "--samples",
            "3000",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(cli())
        .args([
            "stream",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "7",
            "--fault-rate",
            "0.05",
            "--health",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pooled best-F F1"), "stdout: {stdout}");
    assert!(stdout.contains("health report:"), "stdout: {stdout}");
    assert!(stdout.contains("mode:"), "stdout: {stdout}");
    // The health report must expose every quarantine counter, including
    // the eviction/drift lines added with the observability layer.
    assert!(stdout.contains("quarantined"), "stdout: {stdout}");
    assert!(stdout.contains("nan/inf"), "stdout: {stdout}");
    assert!(stdout.contains("evicted"), "stdout: {stdout}");
    assert!(stdout.contains("drift-rejected"), "stdout: {stdout}");

    let out = Command::new(cli())
        .args([
            "stream",
            csv.to_str().expect("utf8 path"),
            "--fault-rate",
            "2.0",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        !out.status.success(),
        "out-of-range fault rate must be rejected"
    );

    std::fs::remove_file(&csv).ok();
}

#[test]
fn trace_out_then_observe_round_trip() {
    let csv = tmp("trace_data.csv");
    let trace = tmp("trace.jsonl");
    let out = Command::new(cli())
        .args([
            "generate",
            "WUSTL-IIoT",
            csv.to_str().expect("utf8 path"),
            "--seed",
            "11",
            "--samples",
            "1500",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `--trace-out` must enable tracing on its own (no CND_OBS needed).
    let out = Command::new(cli())
        .env_remove("CND_OBS")
        .env_remove("CND_OBS_OUT")
        .args([
            "run",
            csv.to_str().expect("utf8 path"),
            "--experiences",
            "2",
            "--seed",
            "11",
            "--trace-out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "run --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&trace).expect("trace written");
    assert!(jsonl.starts_with("{\"ev\":\"meta\""), "first line is meta");
    for span in ["runner.train", "runner.score", "cfe.train", "pca.fit"] {
        assert!(jsonl.contains(span), "trace missing span {span}");
    }

    let out = Command::new(cli())
        .args(["observe", trace.to_str().expect("utf8 path")])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "observe failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase breakdown"), "stdout: {stdout}");
    assert!(stdout.contains("runner.evaluate"), "stdout: {stdout}");
    assert!(stdout.contains("cfe.train"), "stdout: {stdout}");

    // A corrupt trace must be rejected with a non-zero exit.
    std::fs::write(&trace, "not json\n").expect("overwrite trace");
    let out = Command::new(cli())
        .args(["observe", trace.to_str().expect("utf8 path")])
        .output()
        .expect("CLI runs");
    assert!(!out.status.success(), "corrupt trace must be rejected");

    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&trace).ok();
}

/// Satellite: `observe` must exit non-zero when trace validation
/// fails, even for traces whose lines all parse as JSON individually —
/// here a structurally invalid trace with an unclosed span.
#[test]
fn observe_rejects_unclosed_span_with_nonzero_exit() {
    let trace = tmp("unclosed.jsonl");
    std::fs::write(
        &trace,
        concat!(
            "{\"ev\":\"meta\",\"version\":1,\"clock\":\"deterministic\",\"unit\":\"tick\",\"dropped\":0}\n",
            "{\"ev\":\"span_begin\",\"t\":1,\"id\":1,\"parent\":0,\"name\":\"runner.train\",\"fields\":{}}\n",
        ),
    )
    .expect("write trace");
    let out = Command::new(cli())
        .args(["observe", trace.to_str().expect("utf8 path")])
        .output()
        .expect("CLI runs");
    assert!(!out.status.success(), "unclosed span must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid trace"), "stderr: {stderr}");
    std::fs::remove_file(&trace).ok();
}

/// `observe --top N` prints a self-time profile instead of the phase
/// breakdown.
#[test]
fn observe_top_prints_self_time_profile() {
    let trace = tmp("top.jsonl");
    std::fs::write(
        &trace,
        concat!(
            "{\"ev\":\"meta\",\"version\":1,\"clock\":\"deterministic\",\"unit\":\"tick\",\"dropped\":0}\n",
            "{\"ev\":\"span_begin\",\"t\":1,\"id\":1,\"parent\":0,\"name\":\"runner.train\",\"fields\":{}}\n",
            "{\"ev\":\"span_end\",\"t\":5,\"id\":1,\"name\":\"runner.train\",\"dur\":4}\n",
        ),
    )
    .expect("write trace");
    let out = Command::new(cli())
        .args(["observe", trace.to_str().expect("utf8 path"), "--top", "5"])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "observe --top failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top self-time spans"), "stdout: {stdout}");
    assert!(stdout.contains("runner.train"), "stdout: {stdout}");
    std::fs::remove_file(&trace).ok();
}

/// Tentpole acceptance criterion: `bench-check` exits zero against the
/// committed baselines and non-zero on a doctored report with a 10x
/// slower kernel.
#[test]
fn bench_check_passes_committed_pair_and_fails_doctored() {
    // The committed BENCH_substrate.json vs its committed baseline.
    let out = Command::new(cli())
        .args(["bench-check", "BENCH_substrate.json"])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "committed pair must pass: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bench-check: PASS"), "stdout: {stdout}");

    // Doctor one serial rate down 10x: that is below the Relative(0.6)
    // floor, so the check must fail with a non-zero exit.
    let doctored = tmp("doctored_bench.json");
    let text = std::fs::read_to_string("BENCH_substrate.json").expect("bench report committed");
    let needle = "\"serial_rate\":";
    let at = text.find(needle).expect("serial_rate field") + needle.len();
    let end = at + text[at..].find([',', '}']).expect("number end");
    let rate: f64 = text[at..end].trim().parse().expect("rate parses");
    let slow = format!("{}{}{}", &text[..at], rate / 10.0, &text[end..]);
    std::fs::write(&doctored, slow).expect("write doctored report");

    let out = Command::new(cli())
        .args([
            "bench-check",
            doctored.to_str().expect("utf8 path"),
            "--baseline",
            "baselines/BENCH_substrate.json",
        ])
        .output()
        .expect("CLI runs");
    assert!(!out.status.success(), "doctored report must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "stdout: {stdout}");
    assert!(stdout.contains("bench-check: FAIL"), "stdout: {stdout}");
    // A regression is not a usage error: no usage blurb on this path.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("usage:"), "stderr: {stderr}");
    std::fs::remove_file(&doctored).ok();
}

/// `bench-check --update` creates a baseline that the same artifact
/// then passes against; a missing baseline is an error that points at
/// `--update`.
#[test]
fn bench_check_update_workflow_round_trips() {
    let dir = tmp("bench_baselines");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let baseline = dir.join("roundtrip.json");

    // Without a baseline: fail, and tell the user how to create one.
    let out = Command::new(cli())
        .args([
            "bench-check",
            "BENCH_substrate.json",
            "--baseline",
            baseline.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("CLI runs");
    assert!(!out.status.success(), "missing baseline must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--update"),
        "error should suggest --update"
    );

    // --update writes it; a re-check of the identical artifact passes.
    let out = Command::new(cli())
        .args([
            "bench-check",
            "BENCH_substrate.json",
            "--baseline",
            baseline.to_str().expect("utf8 path"),
            "--update",
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "--update failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(written.starts_with("{\"benchcheck\":1"), "got: {written}");

    let out = Command::new(cli())
        .args([
            "bench-check",
            "BENCH_substrate.json",
            "--baseline",
            baseline.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "identical artifact must pass its own baseline: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_file(&baseline).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn profiles_subcommand_lists_all() {
    let out = Command::new(cli())
        .arg("profiles")
        .output()
        .expect("CLI runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["X-IIoTID", "WUSTL-IIoT", "CICIDS2017", "UNSW-NB15"] {
        assert!(stdout.contains(name), "missing profile {name}");
    }
}

#[test]
fn bad_usage_fails_with_message() {
    let out = Command::new(cli()).arg("bogus").output().expect("CLI runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("usage:"));
}
