//! Determinism guarantees of the parallel compute substrate.
//!
//! The `cnd-parallel` pool promises that, in deterministic mode (the
//! default), every parallelized kernel is **bit-identical** to its
//! serial execution at any thread count: chunk boundaries are fixed
//! (never derived from the pool size) and reductions combine partials
//! with an ordered tree. These tests pin that guarantee across thread
//! counts {1, 2, 4, 7} and adversarial shapes (empty, 1×N, N×1,
//! non-multiples of the blocking factors).

use cnd_ids::linalg::Matrix;
use cnd_ids::ml::pca::{ComponentSelection, Pca};
use cnd_ids::ml::KMeans;
use cnd_ids::nn::{Activation, Sequential};
use cnd_ids::parallel::ThreadPool;
use proptest::prelude::*;
use rand::SeedableRng;

/// Thread counts exercised for every property: serial, even splits, and
/// a prime count that never divides the test shapes evenly.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Exact bit patterns of a matrix (distinguishes `0.0` from `-0.0`).
fn matrix_bits(m: &Matrix) -> Vec<u64> {
    m.iter().map(|v| v.to_bits()).collect()
}

fn slice_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` once per thread count and asserts all outputs agree bitwise
/// with the serial (1-thread) run via `bits`.
fn assert_pool_invariant<T, F, B>(f: F, bits: B)
where
    F: Fn(&ThreadPool) -> T,
    B: Fn(&T) -> Vec<u64>,
{
    let reference = {
        let pool = ThreadPool::new(1);
        let out = pool.install(|| f(&pool));
        bits(&out)
    };
    for &t in &THREAD_COUNTS[1..] {
        let pool = ThreadPool::new(t);
        let out = pool.install(|| f(&pool));
        assert_eq!(
            bits(&out),
            reference,
            "output diverged from serial at {t} threads"
        );
    }
}

/// Strategy: multiplicable matrix pair with shapes large enough that
/// many cases cross the parallel-dispatch thresholds.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=80, 1usize..=70, 1usize..=90).prop_flat_map(|(n, m, p)| {
        (
            prop::collection::vec(-10.0..10.0f64, n * m),
            prop::collection::vec(-10.0..10.0f64, m * p),
        )
            .prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(n, m, a).expect("sized"),
                    Matrix::from_vec(m, p, b).expect("sized"),
                )
            })
    })
}

/// Strategy: a data matrix with enough rows to span several scoring
/// chunks and enough spread for PCA/k-means to be well-posed.
fn data_matrix() -> impl Strategy<Value = Matrix> {
    (20usize..=300, 2usize..=12).prop_flat_map(|(r, c)| {
        prop::collection::vec(-50.0..50.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bit_identical_across_thread_counts((a, b) in matmul_pair()) {
        let reference = a.matmul_naive(&b).expect("shapes agree");
        assert_pool_invariant(
            |_| a.matmul(&b).expect("shapes agree"),
            matrix_bits,
        );
        // The blocked kernel also agrees exactly with the naive oracle:
        // per-output-element accumulation order is identical.
        prop_assert_eq!(
            matrix_bits(&a.matmul(&b).expect("shapes agree")),
            matrix_bits(&reference)
        );
    }

    #[test]
    fn transpose_bit_identical_across_thread_counts((a, _b) in matmul_pair()) {
        assert_pool_invariant(|_| a.transpose(), matrix_bits);
    }

    #[test]
    fn pca_scores_bit_identical_across_thread_counts(x in data_matrix()) {
        let k = (x.cols() / 2).max(1);
        let pca = Pca::fit(&x, ComponentSelection::Fixed(k)).expect("fits");
        assert_pool_invariant(
            |_| pca.reconstruction_errors(&x).expect("scores"),
            |v| slice_bits(v),
        );
    }

    #[test]
    fn kmeans_identical_across_thread_counts(x in data_matrix()) {
        let k = 4.min(x.rows());
        assert_pool_invariant(
            |_| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                let km = KMeans::fit(&x, k, 40, &mut rng).expect("fits");
                let labels = km.predict(&x).expect("dims match");
                (matrix_bits(km.centroids()), km.inertia().to_bits(), labels)
            },
            |(centroids, inertia, labels)| {
                let mut bits = centroids.clone();
                bits.push(*inertia);
                bits.extend(labels.iter().map(|&l| l as u64));
                bits
            },
        );
    }

    #[test]
    fn forward_inference_bit_identical_across_thread_counts(x in data_matrix()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let net = Sequential::mlp(&[x.cols(), 16, 8], Activation::Relu, &mut rng);
        assert_pool_invariant(|_| net.forward_inference(&x), matrix_bits);
    }
}

/// Shapes chosen to stress boundaries: empty, single row/column, and
/// sizes that are not multiples of the 64/32 blocking factors.
#[test]
fn matmul_adversarial_shapes_match_naive_at_every_thread_count() {
    let shapes: [(usize, usize, usize); 7] = [
        (0, 5, 3),
        (3, 0, 4),
        (4, 5, 0),
        (1, 200, 1),
        (200, 1, 200),
        (65, 67, 33),
        (129, 63, 66),
    ];
    for (n, m, p) in shapes {
        let a = Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 17) % 23) as f64 - 11.0);
        let b = Matrix::from_fn(m, p, |i, j| ((i * 13 + j * 7) % 19) as f64 - 9.0);
        let oracle = a.matmul_naive(&b).expect("shapes agree");
        for t in THREAD_COUNTS {
            let pool = ThreadPool::new(t);
            let out = pool.install(|| a.matmul(&b).expect("shapes agree"));
            assert_eq!(
                matrix_bits(&out),
                matrix_bits(&oracle),
                "({n}x{m})*({m}x{p}) diverged at {t} threads"
            );
        }
    }
}

#[test]
fn pca_scoring_spans_many_chunks_bit_identically() {
    // 1000 rows = four 256-row chunks, the last one partial.
    let x = Matrix::from_fn(1000, 16, |i, j| ((i * 29 + j * 3) % 31) as f64 / 31.0);
    let pca = Pca::fit(&x, ComponentSelection::Fixed(8)).expect("fits");
    assert_pool_invariant(
        |_| pca.reconstruction_errors(&x).expect("scores"),
        |v| slice_bits(v),
    );
}

#[test]
fn empty_batches_are_handled() {
    let x = Matrix::from_fn(50, 6, |i, j| (i + j) as f64);
    let pca = Pca::fit(&x, ComponentSelection::Fixed(3)).expect("fits");
    let empty = Matrix::zeros(0, 6);
    for t in THREAD_COUNTS {
        let pool = ThreadPool::new(t);
        let scores = pool.install(|| pca.reconstruction_errors(&empty).expect("scores"));
        assert!(scores.is_empty(), "{t} threads");
    }
}

#[test]
fn non_deterministic_mode_still_correct_for_row_independent_kernels() {
    // With determinism off, chunk sizes may scale with the pool — row
    // maps (matmul) remain exact; only reduction association may change.
    let a = Matrix::from_fn(90, 80, |i, j| ((i * 7 + j) % 13) as f64);
    let b = Matrix::from_fn(80, 70, |i, j| ((i + j * 5) % 11) as f64);
    let oracle = a.matmul_naive(&b).expect("shapes agree");
    let pool = ThreadPool::builder()
        .threads(4)
        .deterministic(false)
        .build();
    let out = pool.install(|| a.matmul(&b).expect("shapes agree"));
    assert_eq!(matrix_bits(&out), matrix_bits(&oracle));
}
