//! Cross-crate integration tests: full CND-IDS pipeline runs on every
//! dataset profile, baselines complete the same protocol, and the
//! metrics wiring is consistent end to end.

use cnd_ids::core::baselines::{UclBaseline, UclConfig, UclMethod};
use cnd_ids::core::runner::{evaluate_continual, evaluate_static_detector};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::detectors::PcaDetector;

fn small_split(profile: DatasetProfile, seed: u64) -> continual::ContinualSplit {
    let data = profile
        .generate(&GeneratorConfig::small(seed))
        .expect("generation succeeds");
    continual::prepare(&data, profile.default_experiences(), 0.7, seed).expect("split succeeds")
}

#[test]
fn cnd_ids_runs_on_every_profile() {
    for profile in DatasetProfile::ALL {
        let split = small_split(profile, 31);
        let mut model =
            CndIds::new(CndIdsConfig::fast(31), &split.clean_normal).expect("model builds");
        let out = evaluate_continual(&mut model, &split).expect("run completes");
        let m = profile.default_experiences();
        assert_eq!(out.f1_matrix.experiences(), m, "{profile}");
        // Every matrix entry is a valid F1.
        for i in 0..m {
            for j in 0..m {
                let v = out.f1_matrix.get(i, j);
                assert!((0.0..=1.0).contains(&v), "{profile} R[{i}][{j}] = {v}");
            }
        }
        assert!(
            out.f1_matrix.avg() > 0.2,
            "{profile}: AVG = {} suggests the detector learned nothing",
            out.f1_matrix.avg()
        );
    }
}

#[test]
fn baselines_run_on_wustl() {
    let split = small_split(DatasetProfile::WustlIiot, 32);
    for method in [UclMethod::Adcn, UclMethod::Lwf] {
        let mut model = UclBaseline::new(method, split.clean_normal.cols(), UclConfig::fast(32))
            .expect("baseline builds");
        let out = evaluate_continual(&mut model, &split).expect("baseline run completes");
        assert_eq!(out.name, method.name());
        assert!(out.f1_matrix.avg() >= 0.0);
    }
}

#[test]
fn cnd_ids_beats_static_pca_on_average() {
    // The paper's central claim in miniature: continually updating the
    // feature space should not hurt, and typically helps, relative to
    // static PCA on raw features. We assert CND-IDS reaches at least
    // ~90% of static PCA's average F1 on one profile and strictly more
    // FwdTrans than zero.
    let split = small_split(DatasetProfile::XIiotId, 33);
    let mut static_pca = PcaDetector::new(0.95);
    let static_out = evaluate_static_detector(&mut static_pca, &split).expect("static run");

    let mut model = CndIds::new(CndIdsConfig::fast(33), &split.clean_normal).expect("builds");
    let cnd_out = evaluate_continual(&mut model, &split).expect("cnd run");

    assert!(
        cnd_out.f1_matrix.avg() > 0.9 * static_out.average_f1() - 0.05,
        "CND-IDS AVG {} collapsed vs static PCA {}",
        cnd_out.f1_matrix.avg(),
        static_out.average_f1()
    );
    assert!(cnd_out.f1_matrix.fwd_trans() > 0.0);
}

#[test]
fn outcome_reports_timing_and_prauc() {
    let split = small_split(DatasetProfile::UnswNb15, 34);
    let mut model = CndIds::new(CndIdsConfig::fast(34), &split.clean_normal).expect("builds");
    let out = evaluate_continual(&mut model, &split).expect("run");
    assert!(out.train_seconds > 0.0);
    assert!(out.inference_ms_per_sample > 0.0);
    let ap = out.final_pr_auc().expect("CND-IDS produces scores");
    assert!((0.0..=1.0).contains(&ap));
}

#[test]
fn deterministic_end_to_end() {
    let split = small_split(DatasetProfile::WustlIiot, 35);
    let run = || {
        let mut model = CndIds::new(CndIdsConfig::fast(35), &split.clean_normal).unwrap();
        evaluate_continual(&mut model, &split).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.f1_matrix, b.f1_matrix);
    assert_eq!(a.pr_auc_per_step, b.pr_auc_per_step);
}
