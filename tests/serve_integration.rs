//! End-to-end tests of the `cnd-serve` scoring server: wire-protocol
//! robustness against hostile frames, admission control under pressure,
//! and the hot-swap determinism guarantee (never mix weights mid-batch,
//! never drop an accepted request, scores bit-for-bit per version).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cnd_ids::core::deploy::DeployedScorer;
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::linalg::Matrix;
use cnd_ids::serve::protocol::{PROTOCOL_VERSION, REQUEST_MAGIC};
use cnd_ids::serve::{
    run_loadgen, LoadGenConfig, Reply, ServeClient, ServeConfig, Server, Verdict,
};

/// Trains a tiny model; different seeds give different weights with the
/// same feature width.
fn trained_scorer(seed: u64) -> DeployedScorer {
    let d = 6;
    let normal = |i: usize, j: usize| ((i * 7 + j * 3 + seed as usize) % 13) as f64 * 0.1;
    let n_c = Matrix::from_fn(50, d, normal);
    let train = Matrix::from_fn(300, d, |i, j| {
        if i < 240 {
            normal(i + 100, j)
        } else {
            normal(i + 100, j) + 2.5
        }
    });
    let mut model = CndIds::new(CndIdsConfig::fast(seed), &n_c).expect("model builds");
    model.train_experience(&train).expect("model trains");
    DeployedScorer::from_model(&model).expect("model freezes")
}

struct TempArtifact(PathBuf);

static UNIQUE: AtomicU64 = AtomicU64::new(0);

impl TempArtifact {
    fn new(tag: &str, scorer: &DeployedScorer) -> TempArtifact {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("cnd_serve_it_{tag}_{}_{n}.txt", std::process::id()));
        scorer.save_to_path(&path).expect("artifact saves");
        TempArtifact(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn feature_row(k: usize, d: usize) -> Vec<f64> {
    (0..d)
        .map(|j| ((k * 11 + j * 5) % 17) as f64 * 0.13)
        .collect()
}

#[test]
fn served_scores_match_local_scorer_bit_for_bit() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("bitexact", &scorer);
    let server = Server::start(artifact.path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connects");

    for k in 0..32 {
        let features = feature_row(k, d);
        let local = scorer
            .anomaly_scores(&Matrix::from_vec(1, d, features.clone()).unwrap())
            .unwrap()[0];
        match client.score(&features).expect("score round trip") {
            Reply::Score {
                score,
                model_version,
                ..
            } => {
                assert_eq!(model_version, 1);
                assert_eq!(
                    score.to_bits(),
                    local.to_bits(),
                    "flow {k}: served score differs from local scoring"
                );
            }
            other => panic!("flow {k}: unexpected reply {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 32);
    assert_eq!(stats.scored, 32);
}

#[test]
fn explicit_threshold_drives_verdicts() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("verdict", &scorer);

    // Threshold below every score: everything alerts. Above: nothing.
    let probe = scorer
        .anomaly_scores(&Matrix::from_vec(1, d, feature_row(0, d)).unwrap())
        .unwrap()[0];
    for (tau, expected) in [
        (probe - 1.0, Verdict::Alert),
        (probe + 1.0, Verdict::Normal),
    ] {
        let server = Server::start(
            artifact.path(),
            "127.0.0.1:0",
            ServeConfig {
                threshold: Some(tau),
                ..ServeConfig::default()
            },
        )
        .expect("server starts");
        let mut client = ServeClient::connect(server.local_addr()).expect("connects");
        match client.score(&feature_row(0, d)).expect("scores") {
            Reply::Score { verdict, .. } => assert_eq!(verdict, expected),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

#[test]
fn uncalibrated_until_window_fills_then_verdicts_appear() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("calib", &scorer);
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            calibrate: 8,
            quantile: 0.5,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connects");
    let mut verdicts = Vec::new();
    for k in 0..32 {
        match client.score(&feature_row(k, d)).expect("scores") {
            Reply::Score { verdict, .. } => verdicts.push(verdict),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(
        verdicts[0],
        Verdict::Uncalibrated,
        "first score arrives before the window can fill"
    );
    assert!(
        verdicts.iter().any(|v| *v != Verdict::Uncalibrated),
        "calibration never completed in 32 scores with an 8-score window"
    );
}

/// Every malformed frame must produce a typed error reply (or a clean
/// close for sync-losing frames) and leave the server able to score a
/// well-formed request on a fresh connection.
#[test]
fn malformed_frames_get_error_replies_and_server_keeps_serving() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("hostile", &scorer);
    let server = Server::start(artifact.path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server starts");
    let addr = server.local_addr();

    let score_header = |dim: u32| {
        let mut f = Vec::new();
        f.extend_from_slice(&REQUEST_MAGIC);
        f.push(PROTOCOL_VERSION);
        f.push(1); // Score
        f.extend_from_slice(&99u64.to_le_bytes());
        f.extend_from_slice(&dim.to_le_bytes());
        f
    };

    let wrong_magic = {
        let mut f = score_header(1);
        f[0] = b'X';
        f.extend_from_slice(&1.0f64.to_le_bytes());
        f
    };
    let bad_version = {
        let mut f = score_header(1);
        f[4] = 99;
        f.extend_from_slice(&1.0f64.to_le_bytes());
        f
    };
    let oversized_dim = score_header(u32::MAX);
    let zero_dim = score_header(0);
    let nan_feature = {
        let mut f = score_header(2);
        f.extend_from_slice(&1.0f64.to_le_bytes());
        f.extend_from_slice(&f64::NAN.to_le_bytes());
        f
    };
    let wrong_dim = {
        // Well-formed frame whose width disagrees with the model.
        let mut f = score_header(2);
        f.extend_from_slice(&1.0f64.to_le_bytes());
        f.extend_from_slice(&2.0f64.to_le_bytes());
        f
    };
    let unknown_type = {
        let mut f = Vec::new();
        f.extend_from_slice(&REQUEST_MAGIC);
        f.push(PROTOCOL_VERSION);
        f.push(42);
        f.extend_from_slice(&99u64.to_le_bytes());
        f
    };
    let truncated = {
        let mut f = score_header(4);
        f.extend_from_slice(&1.0f64.to_le_bytes());
        f // promises 4 features, delivers 1, then the connection closes
    };

    let cases: [(&str, &[u8]); 8] = [
        ("wrong magic", &wrong_magic),
        ("bad version", &bad_version),
        ("oversized dim", &oversized_dim),
        ("zero dim", &zero_dim),
        ("nan feature", &nan_feature),
        ("wrong feature width", &wrong_dim),
        ("unknown type", &unknown_type),
        ("truncated payload", &truncated),
    ];

    for (name, frame) in cases {
        let mut raw = TcpStream::connect(addr).expect("connects");
        // Short timeout: the reply arrives immediately; recoverable
        // frames leave the connection open so the loop exits on it.
        raw.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        raw.write_all(frame).expect("writes hostile frame");
        if name == "truncated payload" {
            // Server is blocked mid-frame; closing our write half
            // delivers the EOF that makes truncation observable.
            raw.shutdown(std::net::Shutdown::Write).unwrap();
        }
        // Read whatever the server sends until it closes or goes quiet;
        // a typed reply starts with the reply magic.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        }
        assert!(
            buf.starts_with(b"CNDR"),
            "{name}: expected a typed error reply, got {buf:?}"
        );

        // The server must still score well-formed traffic afterwards.
        let mut client = ServeClient::connect(addr).expect("reconnects");
        match client.score(&feature_row(7, d)).expect("still serving") {
            Reply::Score { .. } => {}
            other => panic!("{name}: server unhealthy afterwards: {other:?}"),
        }
    }

    let stats = server.shutdown();
    assert!(
        stats.bad_frames >= cases.len() as u64,
        "every hostile frame should be counted, got {}",
        stats.bad_frames
    );
}

#[test]
fn full_queue_sheds_with_explicit_overloaded_replies() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("shed", &scorer);
    // A tiny queue and a long deadline so requests pile up un-batched.
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(500),
            queue_cap: 4,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let total = 16;
    let handles: Vec<_> = (0..total)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                c.score(&feature_row(k, d)).expect("round trip")
            })
        })
        .collect();
    let mut scored = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.join().expect("client thread") {
            Reply::Score { .. } => scored += 1,
            Reply::Overloaded { .. } => shed += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(scored + shed, total as u64, "every request got a reply");
    assert!(shed >= 1, "queue_cap=4 with 16 concurrent must shed");
    let stats = server.shutdown();
    assert_eq!(stats.accepted, scored);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.scored, scored, "accepted requests are never dropped");
}

/// The hot-swap guarantee: concurrent scoring while models swap never
/// mixes weights (every reply's score bit-matches the scorer version it
/// names), never drops an accepted request, and both versions are
/// actually observed.
#[test]
fn hot_swap_under_load_is_atomic_and_bit_exact() {
    let scorer_a = trained_scorer(3);
    let scorer_b = trained_scorer(11);
    let d = scorer_a.n_features();
    assert_eq!(d, scorer_b.n_features());

    let artifact = TempArtifact::new("hotswap", &scorer_a);
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Expected score per (version, flow) pair, computed locally.
    let expect = |scorer: &DeployedScorer, k: usize| {
        scorer
            .anomaly_scores(&Matrix::from_vec(1, d, feature_row(k, d)).unwrap())
            .unwrap()[0]
    };

    // Each worker keeps scoring until it has seen a handful of replies
    // from the swapped-in model (the cap only guards against a reload
    // that never lands), so the "both versions observed" assertion
    // cannot race the swap on a slow or loaded machine.
    let workers = 4;
    let cap = 5000;
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                let mut seen = Vec::new();
                let mut after_swap = 0;
                for i in 0..cap {
                    let k = w * cap + i;
                    match c.score(&feature_row(k, d)).expect("round trip") {
                        Reply::Score {
                            score,
                            model_version,
                            ..
                        } => {
                            seen.push((k, model_version, score));
                            if model_version >= 2 {
                                after_swap += 1;
                                if after_swap >= 8 {
                                    break;
                                }
                            }
                        }
                        other => panic!("flow {k}: unexpected reply {other:?}"),
                    }
                }
                seen
            })
        })
        .collect();

    // Swap to model B mid-run: wait until traffic is demonstrably
    // flowing, overwrite the artifact atomically, then reload through
    // the server API (same path the wire `reload` takes).
    while server.stats().scored < 50 {
        std::thread::sleep(Duration::from_millis(1));
    }
    scorer_b
        .save_to_path(artifact.path())
        .expect("artifact swaps");
    let new_version = server.reload().expect("hot swap succeeds");
    assert_eq!(new_version, 2);

    let mut versions_seen = std::collections::BTreeSet::new();
    let mut sent = 0u64;
    for h in handles {
        for (k, version, score) in h.join().expect("worker") {
            sent += 1;
            versions_seen.insert(version);
            let expected = match version {
                1 => expect(&scorer_a, k),
                2 => expect(&scorer_b, k),
                v => panic!("flow {k}: impossible model version {v}"),
            };
            assert_eq!(
                score.to_bits(),
                expected.to_bits(),
                "flow {k}: score does not match the weights of model v{version} — batch mixed weights?"
            );
        }
    }
    assert!(
        versions_seen.contains(&2),
        "swap happened mid-run but no reply came from model v2"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.accepted, sent,
        "default queue depth should admit everything"
    );
    assert_eq!(
        stats.scored, stats.accepted,
        "zero dropped accepted requests across the swap"
    );
    assert_eq!(stats.reply_failures, 0);
    assert_eq!(stats.reloads, 1);
}

#[test]
fn wire_reload_and_info_round_trip() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("wire_reload", &scorer);
    let server = Server::start(artifact.path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connects");

    for k in 0..5 {
        client.score(&feature_row(k, d)).expect("scores");
    }
    assert_eq!(client.reload().expect("wire reload"), 2);
    let info = client.info().expect("info");
    assert_eq!(info.model_version, 2);
    assert_eq!(info.n_features as usize, d);
    assert_eq!(info.accepted, 5);
    assert_eq!(info.reloads, 1);

    // Reload against a corrupt artifact is refused; old model serves on.
    std::fs::write(artifact.path(), "garbage").unwrap();
    assert!(client.reload().is_err());
    match client.score(&feature_row(9, d)).expect("still serving") {
        Reply::Score { model_version, .. } => assert_eq!(model_version, 2),
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn loadgen_reports_throughput_and_survives_midway_reload() {
    let scorer = trained_scorer(3);
    let artifact = TempArtifact::new("loadgen", &scorer);
    let server = Server::start(artifact.path(), "127.0.0.1:0", ServeConfig::default())
        .expect("server starts");
    let report = run_loadgen(
        server.local_addr(),
        &LoadGenConfig {
            flows: 400,
            concurrency: 2,
            reload_midway: true,
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen runs");
    assert_eq!(report.sent, 400);
    assert_eq!(report.transport_errors, 0, "no accepted request lost");
    assert!(report.ok > 0, "some flows scored");
    assert!(report.flows_per_s > 0.0);
    assert_eq!(report.reload_version, Some(2));
    let metrics = report.bench_metrics("it");
    assert!(metrics
        .iter()
        .all(|(n, _)| n.starts_with("rate.it.") || n.starts_with("lat.it.")));
    assert!(metrics.iter().any(|(n, _)| n == "lat.it.p99_us"));
    assert_eq!(report.reconnects_per_worker.len(), 2);
    assert_eq!(report.latency.count, report.ok);
    assert!(report.max_us >= report.p999_us && report.p999_us >= report.p50_us);
    let stats = server.shutdown();
    assert_eq!(stats.scored + stats.shed, 400);
}

/// The lifecycle-telemetry contract: every served request appears in
/// each stage histogram, shed decisions carry the queue depth that
/// caused them, and — because `total` is measured end-to-end rather
/// than summed — the sum of stage medians must agree with the
/// end-to-end median within the batching jitter.
#[test]
fn stage_medians_are_consistent_with_end_to_end_latency() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("stages", &scorer);
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let workers = 3;
    let per_worker = 150;
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                for i in 0..per_worker {
                    match c
                        .score(&feature_row(w * per_worker + i, d))
                        .expect("scores")
                    {
                        Reply::Score { .. } => {}
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client worker");
    }

    let snap = server
        .telemetry_snapshot()
        .expect("telemetry is on by default");
    let served = (workers * per_worker) as u64;
    // Every request passed through every stage exactly once.
    assert_eq!(snap.total.count, served);
    assert_eq!(snap.queue_wait.count, served);
    assert_eq!(snap.batch_form.count, served);
    assert_eq!(snap.score.count, served);
    assert_eq!(snap.write.count, served);
    assert_eq!(snap.parse.count, served);
    assert!(snap.queue_depth.count > 0, "depth sampled at every drain");
    assert_eq!(snap.records_dropped, 0, "rings must not saturate here");
    assert_eq!(snap.shed_queue_full, 0);
    assert_eq!(snap.bad_frames, 0);

    // Sum of stage medians vs the end-to-end median. The stages
    // partition [enqueue, reply-written] (parse precedes the enqueue
    // timestamp, so it is excluded), but medians of different
    // distributions do not sum exactly — allow generous slack plus the
    // HDR quantile error before calling it inconsistent.
    let p50 = |h: &cnd_ids::obs::hdr::HdrHistogram| h.quantile(0.5).unwrap_or(0) as f64;
    let stage_sum =
        p50(&snap.queue_wait) + p50(&snap.batch_form) + p50(&snap.score) + p50(&snap.write);
    let total = p50(&snap.total);
    assert!(
        stage_sum <= 2.0 * total + 500.0,
        "stage medians ({stage_sum}us) wildly exceed end-to-end median ({total}us)"
    );
    assert!(
        stage_sum >= 0.25 * total - 500.0,
        "stage medians ({stage_sum}us) unaccountably below end-to-end median ({total}us)"
    );

    let stats = server.shutdown();
    assert_eq!(stats.scored, served);
}

/// Shed attribution: requests rejected by admission control show up in
/// the telemetry with the queue depth at the decision, separate from
/// bad-frame rejections.
#[test]
fn shed_decisions_are_attributed_with_queue_depth() {
    let scorer = trained_scorer(3);
    let d = scorer.n_features();
    let artifact = TempArtifact::new("shed_attr", &scorer);
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(500),
            queue_cap: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let total = 12;
    let handles: Vec<_> = (0..total)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                c.score(&feature_row(k, d)).expect("round trip")
            })
        })
        .collect();
    let shed = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .filter(|r| matches!(r, Reply::Overloaded { .. }))
        .count() as u64;
    assert!(shed >= 1, "queue_cap=2 with 12 concurrent must shed");

    let snap = server.telemetry_snapshot().expect("telemetry on");
    assert_eq!(snap.shed_queue_full, shed, "every shed is attributed");
    assert_eq!(snap.shed_depth.count, shed);
    // Each shed saw the queue at (or beyond) its cap.
    assert!(snap.shed_depth.min.unwrap_or(0) >= 2);
    assert_eq!(snap.bad_frames, 0, "sheds are not bad frames");
    drop(server);
}
