//! End-to-end observability tests through the facade crate: span
//! coverage of a full continual run, and byte-identical deterministic
//! traces across thread-pool sizes.

use cnd_ids::core::resilience::{ResilientConfig, ResilientStreamingCndIds};
use cnd_ids::core::runner::{evaluate_continual, evaluate_resilient_streaming};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::obs;
use cnd_ids::parallel::ThreadPool;

fn split(seed: u64) -> continual::ContinualSplit {
    let data = DatasetProfile::WustlIiot
        .generate(&GeneratorConfig::small(seed))
        .unwrap();
    continual::prepare(&data, 3, 0.7, seed).unwrap()
}

/// ISSUE acceptance criterion: with observability on, a full
/// `evaluate_continual` run emits spans covering >= 90% of the traced
/// wall time, and the training / scoring / retrain / eval phases are
/// all present in the JSONL trace.
#[test]
fn continual_run_spans_cover_at_least_ninety_percent() {
    let _session = obs::Session::wall();
    let s = split(3);
    let mut model = CndIds::new(CndIdsConfig::fast(3), &s.clean_normal).unwrap();
    evaluate_continual(&mut model, &s).unwrap();

    // A short resilient streaming pass adds the retrain phase spans.
    let model = CndIds::new(CndIdsConfig::fast(3), &s.clean_normal).unwrap();
    let mut stream = ResilientStreamingCndIds::new(model, ResilientConfig::default()).unwrap();
    evaluate_resilient_streaming(&mut stream, &s, 256).unwrap();

    let jsonl = obs::snapshot_jsonl();
    let report = obs::phase_report(&jsonl).unwrap();
    for phase in [
        "runner.evaluate",
        "runner.train",
        "runner.score",
        "runner.eval",
        "runner.stream",
        "stream.retrain",
        "cfe.train",
        "pca.fit",
        "pipeline.score",
    ] {
        assert!(
            report.row(phase).is_some(),
            "phase {phase} missing from trace; rows: {:?}",
            report.rows.iter().map(|r| &r.name).collect::<Vec<_>>()
        );
    }
    // Top-level phase spans must account for >= 90% of the root spans'
    // wall time (runner.ingest carries the streaming ingest+retrain).
    let cov = report.coverage(&[
        "runner.train",
        "runner.score",
        "runner.eval",
        "runner.ingest",
    ]);
    assert!(cov >= 0.9, "span coverage {cov:.3} < 0.9");

    obs::trace::validate_jsonl(&jsonl).expect("trace validates");
}

/// Satellite: two identical seeded runs under the deterministic clock
/// produce byte-identical JSONL traces, even when the thread-pool size
/// differs (scheduling-dependent metrics are excluded as volatile).
#[test]
fn deterministic_traces_identical_across_pool_sizes() {
    let _session = obs::Session::deterministic();
    let s = split(9);

    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        obs::reset(obs::ClockKind::Deterministic);
        let pool = ThreadPool::new(threads);
        pool.install(|| {
            let mut model = CndIds::new(CndIdsConfig::fast(9), &s.clean_normal).unwrap();
            evaluate_continual(&mut model, &s).unwrap();
        });
        traces.push(obs::snapshot_jsonl());
    }
    assert!(!traces[0].is_empty());
    assert_eq!(
        traces[0], traces[1],
        "deterministic traces differ between 1 and 4 threads"
    );
    obs::trace::validate_jsonl(&traces[0]).expect("trace validates");
}
