//! End-to-end observability tests through the facade crate: span
//! coverage of a full continual run, and byte-identical deterministic
//! traces across thread-pool sizes.

use cnd_ids::core::resilience::{ResilientConfig, ResilientStreamingCndIds};
use cnd_ids::core::runner::{evaluate_continual, evaluate_resilient_streaming};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::obs;
use cnd_ids::parallel::ThreadPool;

fn split(seed: u64) -> continual::ContinualSplit {
    let data = DatasetProfile::WustlIiot
        .generate(&GeneratorConfig::small(seed))
        .unwrap();
    continual::prepare(&data, 3, 0.7, seed).unwrap()
}

/// ISSUE acceptance criterion: with observability on, a full
/// `evaluate_continual` run emits spans covering >= 90% of the traced
/// wall time, and the training / scoring / retrain / eval phases are
/// all present in the JSONL trace.
#[test]
fn continual_run_spans_cover_at_least_ninety_percent() {
    let _session = obs::Session::wall();
    let s = split(3);
    let mut model = CndIds::new(CndIdsConfig::fast(3), &s.clean_normal).unwrap();
    evaluate_continual(&mut model, &s).unwrap();

    // A short resilient streaming pass adds the retrain phase spans.
    let model = CndIds::new(CndIdsConfig::fast(3), &s.clean_normal).unwrap();
    let mut stream = ResilientStreamingCndIds::new(model, ResilientConfig::default()).unwrap();
    evaluate_resilient_streaming(&mut stream, &s, 256).unwrap();

    let jsonl = obs::snapshot_jsonl();
    let report = obs::phase_report(&jsonl).unwrap();
    for phase in [
        "runner.evaluate",
        "runner.train",
        "runner.score",
        "runner.eval",
        "runner.stream",
        "stream.retrain",
        "cfe.train",
        "pca.fit",
        "pipeline.score",
    ] {
        assert!(
            report.row(phase).is_some(),
            "phase {phase} missing from trace; rows: {:?}",
            report.rows.iter().map(|r| &r.name).collect::<Vec<_>>()
        );
    }
    // Top-level phase spans must account for >= 90% of the root spans'
    // wall time (runner.ingest carries the streaming ingest+retrain).
    let cov = report.coverage(&[
        "runner.train",
        "runner.score",
        "runner.eval",
        "runner.ingest",
    ]);
    assert!(cov >= 0.9, "span coverage {cov:.3} < 0.9");

    obs::trace::validate_jsonl(&jsonl).expect("trace validates");
}

/// Tentpole acceptance criterion: a traced full evaluation emits
/// exactly one schema-valid `quality` event per experience, carrying
/// the F1 matrix row, running continual metrics, and the score
/// histogram.
#[test]
fn quality_events_one_per_experience() {
    let _session = obs::Session::deterministic();
    let s = split(5);
    let m = s.len();
    let mut model = CndIds::new(CndIdsConfig::fast(5), &s.clean_normal).unwrap();
    evaluate_continual(&mut model, &s).unwrap();

    let jsonl = obs::snapshot_jsonl();
    obs::trace::validate_jsonl(&jsonl).expect("trace validates");
    let quality: Vec<&str> = jsonl
        .lines()
        .filter(|l| l.starts_with("{\"ev\":\"quality\""))
        .collect();
    assert_eq!(quality.len(), m, "one quality event per experience");
    for (i, line) in quality.iter().enumerate() {
        let obj = obs::trace::parse_json(line).expect("quality line parses");
        assert_eq!(
            obj.get("experience").and_then(|v| v.as_f64()),
            Some(i as f64)
        );
        let f1 = obj.get("f1").and_then(|v| v.as_arr()).expect("f1 row");
        assert_eq!(f1.len(), m, "f1 row spans all experiences");
        let scores = obj.get("scores").and_then(|v| v.as_obj()).expect("scores");
        let count = scores
            .iter()
            .find(|(k, _)| k.as_str() == "count")
            .expect("count");
        assert!(count.1.as_f64().unwrap() > 0.0, "scores histogram nonempty");
        for key in ["avg", "fwd_trans", "bwd_trans"] {
            assert!(
                obj.get(key).and_then(|v| v.as_f64()).is_some(),
                "{key} missing"
            );
        }
    }
}

/// Tentpole acceptance criterion: while a run is live, the exporter
/// serves valid Prometheus text on /metrics and a JSON health document
/// on /health.
#[test]
fn exporter_serves_metrics_and_health_during_a_run() {
    use std::io::{Read as _, Write as _};

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut conn = std::net::TcpStream::connect(addr).expect("connect to exporter");
        write!(
            conn,
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        response
    }

    let _session = obs::Session::wall();
    let exporter = obs::Exporter::start("127.0.0.1:0").expect("bind ephemeral port");

    let s = split(7);
    let model = CndIds::new(CndIdsConfig::fast(7), &s.clean_normal).unwrap();
    let mut stream = ResilientStreamingCndIds::new(model, ResilientConfig::default()).unwrap();
    evaluate_resilient_streaming(&mut stream, &s, 256).unwrap();

    let metrics = http_get(exporter.local_addr(), "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "got: {metrics}");
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "Prometheus content type missing: {metrics}"
    );
    assert!(metrics.contains("# TYPE cnd_obs_events counter"));
    assert!(
        metrics.contains("# TYPE resilience_retrain_success_count counter"),
        "domain counter missing from exposition: {metrics}"
    );

    let health = http_get(exporter.local_addr(), "/health");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "got: {health}");
    assert!(health.contains("\"status\":\"ok\""), "got: {health}");

    let missing = http_get(exporter.local_addr(), "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");
}

/// Satellite: two identical seeded runs under the deterministic clock
/// produce byte-identical JSONL traces, even when the thread-pool size
/// differs (scheduling-dependent metrics are excluded as volatile).
#[test]
fn deterministic_traces_identical_across_pool_sizes() {
    let _session = obs::Session::deterministic();
    let s = split(9);

    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        obs::reset(obs::ClockKind::Deterministic);
        let pool = ThreadPool::new(threads);
        pool.install(|| {
            let mut model = CndIds::new(CndIdsConfig::fast(9), &s.clean_normal).unwrap();
            evaluate_continual(&mut model, &s).unwrap();
        });
        traces.push(obs::snapshot_jsonl());
    }
    assert!(!traces[0].is_empty());
    assert_eq!(
        traces[0], traces[1],
        "deterministic traces differ between 1 and 4 threads"
    );
    obs::trace::validate_jsonl(&traces[0]).expect("trace validates");
}

/// Satellite: per-thread HDR partials merged through the registry
/// serialize to byte-identical aggregate traces whether the workload
/// ran on 1 thread or 4. Merge is associative and commutative and the
/// bucket map has one canonical order, so chunking must not leak into
/// the trace.
#[test]
fn hdr_aggregate_traces_byte_identical_across_pool_sizes() {
    use cnd_ids::obs::hdr::HdrHistogram;

    let _session = obs::Session::deterministic();
    let n = 10_000usize;
    // A spiky deterministic latency stream spanning many buckets.
    let value = |i: usize| ((i as u64).wrapping_mul(2_654_435_761) >> 8) % 900_000 + 1;

    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        obs::reset(obs::ClockKind::Deterministic);
        let pool = ThreadPool::new(threads);
        let partials = pool.par_chunks(n, 64, |range| {
            let mut h = HdrHistogram::new();
            for i in range {
                h.record(value(i));
            }
            h
        });
        if threads > 1 {
            assert!(partials.len() > 1, "workload must actually split");
        }
        for p in &partials {
            obs::hdr_merge("it.stage.us", p);
        }
        traces.push(obs::snapshot_jsonl());
    }
    assert!(
        traces[0].contains("\"ev\":\"hdr\""),
        "no hdr event in trace: {}",
        traces[0]
    );
    assert_eq!(
        traces[0], traces[1],
        "hdr aggregate traces differ between 1 and 4 threads"
    );
    obs::trace::validate_jsonl(&traces[0]).expect("trace validates");
}
