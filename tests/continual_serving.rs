//! End-to-end tests of the closed continual-serving loop: injected
//! distribution drift must produce exactly one validated canary swap,
//! and every `ScriptedFaults` scenario (corrupt candidate artifact,
//! trainer panic, NaN-poisoned mirror traffic, silently degraded
//! weights) must leave the server scoring on a known-good model —
//! bit-for-bit — with zero dropped accepted requests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cnd_ids::core::deploy::DeployedScorer;
use cnd_ids::core::resilience::{RetryPolicy, ScriptedFaults};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::linalg::Matrix;
use cnd_ids::serve::{
    ContinualConfig, ContinualController, ContinualEvent, Reply, ServeClient, ServeConfig, Server,
    TrafficMirror, ValidationSet,
};

const D: usize = 6;

/// Deterministic "normal" traffic feature, parameterized by seed.
fn base(i: usize, j: usize, seed: u64) -> f64 {
    ((i * 7 + j * 3 + seed as usize) % 13) as f64 * 0.1
}

/// `n` rows of traffic at `offset` above the normal manifold.
fn traffic(n: usize, offset: f64, phase: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..D).map(|j| base(i + phase, j, seed) + offset).collect())
        .collect()
}

/// Trains the bootstrap model and builds the labeled validation set the
/// shadow gate scores candidates on (normals on the training manifold,
/// attacks far off it).
fn bootstrap(seed: u64) -> (CndIds, ValidationSet) {
    let n_c = Matrix::from_fn(60, D, |i, j| base(i, j, seed));
    let train = Matrix::from_fn(300, D, |i, j| {
        if i < 240 {
            base(i + 100, j, seed)
        } else {
            base(i + 100, j, seed) + 2.5
        }
    });
    let mut model = CndIds::new(CndIdsConfig::fast(seed), &n_c).expect("model builds");
    model.train_experience(&train).expect("model trains");
    let val_x = Matrix::from_fn(90, D, |i, j| {
        if i < 60 {
            base(i + 400, j, seed)
        } else {
            base(i + 400, j, seed) + 6.0
        }
    });
    let mut y = vec![0u8; 60];
    y.extend(vec![1u8; 30]);
    let val = ValidationSet::new(val_x, y).expect("validation set");
    (model, val)
}

struct TempArtifact(PathBuf);

static UNIQUE: AtomicU64 = AtomicU64::new(0);

impl TempArtifact {
    fn new(tag: &str, scorer: &DeployedScorer) -> TempArtifact {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "cnd_continual_{tag}_{}_{n}.txt",
            std::process::id()
        ));
        scorer.save_to_path(&path).expect("artifact saves");
        TempArtifact(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

struct Harness {
    server: Server,
    controller: ContinualController,
    client: ServeClient,
    original: DeployedScorer,
    _artifact: TempArtifact,
    events: Vec<ContinualEvent>,
}

fn harness(tag: &str, seed: u64, faults: Option<ScriptedFaults>) -> Harness {
    let (model, val) = bootstrap(seed);
    let original = model.freeze().expect("freezes");
    let artifact = TempArtifact::new(tag, &original);
    let mirror = TrafficMirror::new(4096);
    let server = Server::start(
        artifact.path(),
        "127.0.0.1:0",
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(1),
            queue_cap: 4096,
            mirror: Some(mirror.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let cfg = ContinualConfig {
        drift_window: 64,
        min_retrain_samples: 64,
        max_train_samples: 512,
        probation_samples: 48,
        probation_quantile: 0.95,
        probation_max_alert_rate: 0.5,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_flows: 32,
            max_backoff_flows: 128,
        },
        ..ContinualConfig::default()
    };
    let mut controller =
        ContinualController::new(cfg, model, val, mirror).expect("controller builds");
    if let Some(f) = faults {
        controller.set_fault_injector(Box::new(f));
    }
    let client = ServeClient::connect(server.local_addr()).expect("client connects");
    Harness {
        server,
        controller,
        client,
        original,
        _artifact: artifact,
        events: Vec::new(),
    }
}

impl Harness {
    /// Scores `rows` through the wire; every request must be accepted
    /// and answered with a `Score` reply.
    fn send(&mut self, rows: &[Vec<f64>]) {
        for row in rows {
            match self.client.score(row).expect("transport ok") {
                Reply::Score { .. } => {}
                other => panic!("expected a score reply, got {other:?}"),
            }
        }
    }

    fn pump(&mut self) {
        let evs = self.controller.step(&self.server);
        self.events.extend(evs);
    }

    /// Sends `rows` in chunks, pumping the controller between chunks.
    fn drive(&mut self, rows: Vec<Vec<f64>>) {
        for chunk in rows.chunks(32) {
            self.send(chunk);
            // Let the batcher flush the mirror before pumping.
            std::thread::sleep(Duration::from_millis(5));
            self.pump();
        }
    }

    /// Pumps until the controller leaves `retraining` (trainer joined).
    fn await_trainer(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.controller.state_name() == "retraining" {
            assert!(Instant::now() < deadline, "trainer never finished");
            std::thread::sleep(Duration::from_millis(10));
            self.pump();
        }
    }

    fn saw<F: Fn(&ContinualEvent) -> bool>(&self, f: F) -> bool {
        self.events.iter().any(f)
    }

    /// Asserts the server scores `probe` bit-identically to `expected`
    /// and reports `version` on every reply.
    fn assert_serving(&mut self, expected: &DeployedScorer, version: u32, probe_phase: usize) {
        let probe = traffic(8, 0.4, probe_phase, 77);
        let x = Matrix::from_rows(&probe).expect("probe matrix");
        let want = expected.anomaly_scores(&x).expect("local scores");
        for (row, want) in probe.iter().zip(&want) {
            match self.client.score(row).expect("transport ok") {
                Reply::Score {
                    model_version,
                    score,
                    ..
                } => {
                    assert_eq!(model_version, version, "wrong serving version");
                    assert_eq!(
                        score.to_bits(),
                        want.to_bits(),
                        "served score must match the expected model bit-for-bit"
                    );
                }
                other => panic!("expected a score reply, got {other:?}"),
            }
        }
    }

    /// Drains the pipeline and asserts no accepted request was dropped.
    fn finish(mut self) {
        self.pump();
        let stats = self.server.shutdown();
        assert_eq!(stats.shed, 0, "test traffic should never be shed");
        assert_eq!(
            stats.scored, stats.accepted,
            "every accepted request must be scored"
        );
        assert_eq!(
            stats.reply_failures, 0,
            "every scored request got its reply"
        );
    }

    /// Establishes the drift monitor's reference window on normal
    /// traffic, then injects drifted traffic until retraining starts.
    fn drive_to_retrain(&mut self, seed: u64) {
        self.drive(traffic(192, 0.0, 0, seed));
        assert_eq!(self.controller.stats().drift_detections, 0);
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut phase = 0;
        while self.controller.stats().retrains_started == 0 {
            assert!(Instant::now() < deadline, "drift never triggered a retrain");
            self.drive(traffic(64, 1.5, 5000 + phase, seed));
            phase += 64;
        }
        assert!(self.controller.stats().drift_detections >= 1);
        assert!(self.saw(|e| matches!(e, ContinualEvent::DriftDetected { .. })));
        assert!(self.saw(|e| matches!(e, ContinualEvent::RetrainStarted { .. })));
    }

    /// Feeds drifted traffic until the probation window resolves.
    fn drive_probation(&mut self, seed: u64) {
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut phase = 0;
        while self.controller.state_name() == "probation" {
            assert!(Instant::now() < deadline, "probation never resolved");
            self.drive(traffic(32, 1.5, 9000 + phase, seed));
            phase += 32;
        }
    }
}

#[test]
fn injected_drift_yields_exactly_one_validated_swap() {
    let seed = 3;
    let mut h = harness("drift_swap", seed, None);
    h.drive_to_retrain(seed);
    h.await_trainer();

    let stats = h.controller.stats();
    assert_eq!(stats.swaps, 1, "exactly one canary swap: {stats:?}");
    assert_eq!(stats.shadow_rejects, 0, "candidate passed the shadow gate");
    assert_eq!(stats.swap_refusals, 0);
    assert!(h.saw(|e| matches!(e, ContinualEvent::Swapped { version: 2, .. })));
    assert_eq!(h.server.model_version(), 2);

    h.drive_probation(seed);
    let stats = h.controller.stats();
    assert_eq!(stats.probation_passes, 1, "canary survived: {stats:?}");
    assert_eq!(stats.rollbacks, 0);
    assert!(h.saw(|e| matches!(e, ContinualEvent::ProbationPassed { version: 2, .. })));

    // The new model now serves the drifted distribution: no further
    // drift verdicts, no second swap.
    h.drive(traffic(384, 1.5, 20_000, seed));
    h.await_trainer();
    let stats = h.controller.stats();
    assert_eq!(
        stats.swaps, 1,
        "drift must not re-fire post-swap: {stats:?}"
    );

    // The artifact on disk is the candidate; serving matches it
    // bit-for-bit.
    let disk = DeployedScorer::load_from_path(h.server.model_path()).expect("artifact loads");
    h.assert_serving(&disk, 2, 31);
    h.finish();
}

#[test]
fn corrupt_candidate_artifact_is_refused_and_loop_recovers() {
    let seed = 5;
    let faults = ScriptedFaults::new(seed).with_artifact_garbage_at(&[1]);
    let mut h = harness("garbage_artifact", seed, Some(faults));
    h.drive_to_retrain(seed);
    h.await_trainer();

    // The registry must refuse the unparseable candidate: zero bad
    // swaps, v1 keeps serving bit-for-bit.
    let stats = h.controller.stats();
    assert_eq!(stats.swap_refusals, 1, "{stats:?}");
    assert_eq!(stats.swaps, 0);
    assert!(h.saw(|e| matches!(e, ContinualEvent::SwapRefused { .. })));
    assert_eq!(h.server.model_version(), 1);
    assert_eq!(h.server.stats().reload_failures, 1);
    let original = h.original.clone();
    h.assert_serving(&original, 1, 11);

    // The controller restored a good artifact, so the next cycle (no
    // fault on attempt 2) swaps cleanly after backoff.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut phase = 0;
    while h.controller.stats().swaps == 0 {
        assert!(Instant::now() < deadline, "loop never recovered");
        h.drive(traffic(64, 1.5, 40_000 + phase, seed));
        h.await_trainer();
        phase += 64;
    }
    assert_eq!(h.server.model_version(), 2);
    h.drive_probation(seed);
    assert_eq!(h.controller.stats().rollbacks, 0);
    h.finish();
}

#[test]
fn trainer_panic_is_contained_and_loop_recovers() {
    let seed = 7;
    let faults = ScriptedFaults::new(seed).with_panic_at(&[1]);
    let mut h = harness("trainer_panic", seed, Some(faults));
    h.drive_to_retrain(seed);
    h.await_trainer();

    let stats = h.controller.stats();
    assert_eq!(stats.trainer_panics, 1, "{stats:?}");
    assert_eq!(stats.swaps, 0, "a crashed trainer must not swap anything");
    assert!(h.saw(|e| matches!(e, ContinualEvent::TrainerFailed { .. })));
    assert_eq!(h.server.model_version(), 1);
    let original = h.original.clone();
    h.assert_serving(&original, 1, 13);

    // Attempt 2 has no fault: the loop retrains and swaps after
    // backoff.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut phase = 0;
    while h.controller.stats().swaps == 0 {
        assert!(Instant::now() < deadline, "loop never recovered");
        h.drive(traffic(64, 1.5, 60_000 + phase, seed));
        h.await_trainer();
        phase += 64;
    }
    assert_eq!(h.server.model_version(), 2);
    h.finish();
}

#[test]
fn poisoned_mirror_never_retrains_and_serving_stays_bit_stable() {
    let seed = 9;
    // Corrupt every mirrored sample: NaN / +Inf / huge-magnitude /
    // truncated rows, cycling.
    let faults = ScriptedFaults::new(seed).with_corruption_rate(1.0);
    let mut h = harness("poisoned_mirror", seed, Some(faults));

    // Even overtly drifted traffic cannot arm retraining when the
    // mirror is fully poisoned: every sample is quarantined before it
    // reaches the drift monitor or the training buffer.
    h.drive(traffic(192, 0.0, 0, seed));
    h.drive(traffic(256, 1.5, 5000, seed));
    let stats = h.controller.stats();
    assert!(stats.poisoned_rejected > 0, "{stats:?}");
    assert_eq!(stats.samples_seen, stats.poisoned_rejected);
    assert_eq!(stats.drift_detections, 0);
    assert_eq!(stats.retrains_started, 0);
    assert_eq!(stats.swaps, 0);
    assert_eq!(h.controller.buffered_samples(), 0);

    assert_eq!(h.server.model_version(), 1);
    let original = h.original.clone();
    h.assert_serving(&original, 1, 17);
    h.finish();
}

#[test]
fn degraded_candidate_rolls_back_to_last_known_good() {
    let seed = 11;
    let faults = ScriptedFaults::new(seed).with_artifact_degraded_at(&[1]);
    let mut h = harness("degraded_rollback", seed, Some(faults));
    h.drive_to_retrain(seed);
    h.await_trainer();

    // The degraded artifact parses, so the swap goes through — this is
    // the silent failure only probation can catch.
    let stats = h.controller.stats();
    assert_eq!(stats.swaps, 1, "{stats:?}");
    assert_eq!(h.server.model_version(), 2);
    assert_eq!(h.controller.state_name(), "probation");

    // Post-swap traffic scores enormously under the wrecked weights;
    // the alert-rate explosion inside the probation window triggers an
    // automatic rollback to the last-known-good model.
    h.drive_probation(seed);
    let stats = h.controller.stats();
    assert_eq!(stats.rollbacks, 1, "{stats:?}");
    assert_eq!(stats.probation_passes, 0);
    assert!(h.saw(|e| matches!(
        e,
        ContinualEvent::RolledBack {
            from_version: 2,
            ..
        }
    )));

    // The rollback re-promoted the original weights under a new
    // version; scoring is bit-identical to the pre-swap model.
    let restored = h.server.model_version();
    assert!(restored > 2, "rollback promotes a fresh version");
    let original = h.original.clone();
    h.assert_serving(&original, restored, 19);
    assert_eq!(h.controller.known_good_versions().last(), Some(&restored));
    h.finish();
}
