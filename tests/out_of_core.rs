//! End-to-end tests of the out-of-core data plane: CSV → `cnd ingest`
//! equivalent → `.cnds` store → chunked train/score, asserting the
//! documented f64 bit-identity contract against the in-memory path and
//! that an oversized stream still trains under bounded sampling.

use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cnd_ids::core::outofcore::{train_from_store, OutOfCoreTrainConfig};
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{ingest_csv_from, Dataset, DatasetProfile, GeneratorConfig, IngestOptions};
use cnd_ids::linalg::Matrix;
use cnd_ids::store::FlowStore;
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_store_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cnd_oocore_it_{}_{}.cnds",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small labelled dataset rendered as CSV text, the way an operator's
/// export tool would produce it (header + trailing CRLF quirks included
/// so the test exercises the hardened loader too).
fn dataset_as_csv(rows: usize) -> (Dataset, String) {
    let data = DatasetProfile::WustlIiot
        .generate(&GeneratorConfig::small(97))
        .expect("generation succeeds");
    let rows = rows.min(data.len());
    let mut csv = String::from("\u{feff}");
    for j in 0..data.n_features() {
        csv.push_str(&format!("f{j},"));
    }
    csv.push_str("label\r\n");
    for i in 0..rows {
        for v in data.x.row(i) {
            csv.push_str(&format!("{v:.9},"));
        }
        csv.push_str(&data.class_names[data.class[i]]);
        csv.push_str("\r\n");
    }
    let truncated = Dataset {
        x: Matrix::from_fn(rows, data.n_features(), |i, j| data.x.row(i)[j]),
        class: data.class[..rows].to_vec(),
        class_names: data.class_names.clone(),
        name: data.name.clone(),
    };
    (truncated, csv)
}

/// Ingests the CSV into a fresh temp store and returns it with the
/// loader's view of the same text (the in-memory oracle).
fn ingest_oracle(rows: usize) -> (Dataset, PathBuf) {
    let (_, csv) = dataset_as_csv(rows);
    let path = tmp_store_path();
    let report = ingest_csv_from(Cursor::new(csv.clone()), &path, &IngestOptions::default())
        .expect("ingest succeeds");
    assert_eq!(report.rows_quarantined, 0, "synthetic CSV is clean");
    let oracle = cnd_ids::datasets::loader::read_csv_from(Cursor::new(csv), true, "oracle".into())
        .expect("oracle load succeeds");
    assert_eq!(report.rows_written as usize, oracle.len());
    (oracle, path)
}

#[test]
fn store_training_and_scoring_match_in_memory_bitwise() {
    // 600 rows through 64-row chunks: ~10 chunks per pass, capacities
    // above the stream size so the reservoirs are identity samples and
    // the bit-identity contract applies end to end.
    let (oracle, path) = ingest_oracle(600);
    let store = FlowStore::open(&path).expect("store opens");
    assert_eq!(store.len(), 600);

    let mut cfg = OutOfCoreTrainConfig::new(CndIdsConfig::fast(7));
    cfg.chunk_rows = 64;
    cfg.clean_capacity = 1_000;
    cfg.train_capacity = 1_000;
    let report = train_from_store(&store, &cfg).expect("out-of-core training succeeds");
    assert_eq!(report.rows_streamed, 600);
    assert_eq!(report.clean_sampled as usize, oracle.normal_count());
    assert_eq!(report.train_sampled, 600);

    // In-memory oracle: same N_c (normal rows in stream order), same
    // training set (every row), same config and seed.
    let normals: Vec<usize> = oracle.normal_indices().collect();
    let n_c = oracle.x.select_rows(&normals).expect("selects");
    let mut in_memory = CndIds::new(CndIdsConfig::fast(7), &n_c).expect("builds");
    in_memory.train_experience(&oracle.x).expect("trains");

    let streamed_scorer = report.model.freeze().expect("freezes");
    let oracle_scorer = in_memory.freeze().expect("freezes");

    let expected = oracle_scorer.anomaly_scores(&oracle.x).expect("scores");
    let mut streamed = Vec::new();
    let chunks = store.chunks(64).expect("chunk iter");
    for part in streamed_scorer.score_chunks(chunks) {
        let part = part.expect("chunk scores");
        assert_eq!(part.labels.len(), part.scores.len(), "labels ride along");
        streamed.extend(part.scores);
    }
    assert_eq!(streamed.len(), expected.len());
    for (i, (a, b)) in expected.iter().zip(&streamed).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "score {i} diverged");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn oversized_stream_trains_with_bounded_sample() {
    // Capacities far below the stream size: the reservoirs bound memory
    // and training still completes with a usable scorer.
    let (oracle, path) = ingest_oracle(900);
    let store = FlowStore::open(&path).expect("store opens");

    let mut cfg = OutOfCoreTrainConfig::new(CndIdsConfig::fast(11));
    cfg.chunk_rows = 128;
    cfg.clean_capacity = 60;
    cfg.train_capacity = 150;
    let report = train_from_store(&store, &cfg).expect("training succeeds");
    assert_eq!(report.rows_streamed, 900);
    assert_eq!(report.clean_sampled, 60);
    assert_eq!(report.train_sampled, 150);
    assert!(report.clean_candidates >= 60);

    let scorer = report.model.freeze().expect("freezes");
    let probe = oracle
        .x
        .select_rows(&(0..64).collect::<Vec<_>>())
        .expect("probe");
    let scores = scorer.anomaly_scores(&probe).expect("scores");
    assert!(scores.iter().all(|s| s.is_finite()));
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adversarial chunk sizes: any chunking of the store produces
    /// bitwise the same scores as one full-matrix pass.
    #[test]
    fn chunk_size_never_changes_scores(chunk_rows in 1usize..190) {
        let (oracle, path) = ingest_oracle(150);
        let store = FlowStore::open(&path).expect("store opens");

        let normals: Vec<usize> = oracle.normal_indices().collect();
        let n_c = oracle.x.select_rows(&normals).expect("selects");
        let mut model = CndIds::new(CndIdsConfig::fast(3), &n_c).expect("builds");
        model.train_experience(&oracle.x).expect("trains");
        let scorer = model.freeze().expect("freezes");

        let expected = scorer.anomaly_scores(&oracle.x).expect("scores");
        let mut streamed = Vec::new();
        for part in scorer.score_chunks(store.chunks(chunk_rows).expect("chunk iter")) {
            streamed.extend(part.expect("chunk scores").scores);
        }
        prop_assert_eq!(streamed.len(), expected.len());
        for (a, b) in expected.iter().zip(&streamed) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }
}
