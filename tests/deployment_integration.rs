//! End-to-end deployment scenario: train CND-IDS continually, freeze it
//! into a scorer, persist it to disk, reload, and verify the deployed
//! pipeline (quantile threshold, no labels) still detects attacks.

use cnd_ids::core::deploy::DeployedScorer;
use cnd_ids::core::runner::evaluate_continual;
use cnd_ids::core::{CndIds, CndIdsConfig};
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::metrics::classification::f1_score;
use cnd_ids::metrics::threshold::{apply_threshold, quantile_threshold};

#[test]
fn train_freeze_persist_reload_detect() {
    let profile = DatasetProfile::UnswNb15;
    let data = profile
        .generate(&GeneratorConfig::small(77))
        .expect("generation succeeds");
    let split = continual::prepare(&data, 5, 0.7, 77).expect("split succeeds");

    // Train through the full stream.
    let mut model = CndIds::new(CndIdsConfig::fast(77), &split.clean_normal).expect("builds");
    evaluate_continual(&mut model, &split).expect("training completes");

    // Freeze and persist to a real file.
    let scorer = DeployedScorer::from_model(&model).expect("model is trained");
    let path = std::env::temp_dir().join("cnd_ids_test_scorer.txt");
    {
        let file = std::fs::File::create(&path).expect("temp file");
        scorer.save(file).expect("save succeeds");
    }
    let restored = {
        let file = std::fs::File::open(&path).expect("temp file exists");
        DeployedScorer::load(std::io::BufReader::new(file)).expect("load succeeds")
    };
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.n_features(), data.n_features());

    // Label-free threshold from the clean normal subset.
    let calibration = restored
        .anomaly_scores(&split.clean_normal)
        .expect("scoring succeeds");
    let tau = quantile_threshold(&calibration, 0.95).expect("calibration non-empty");

    // The deployed pipeline must still detect attacks on the last
    // experience (which contains classes unseen in experience 0).
    let last = split.experiences.last().expect("non-empty split");
    let scores = restored
        .anomaly_scores(&last.test_x)
        .expect("scoring succeeds");
    let pred = apply_threshold(&scores, tau);
    let f1 = f1_score(&pred, &last.test_y).expect("both classes present");
    assert!(
        f1 > 0.4,
        "deployed scorer with label-free threshold should still detect (F1 = {f1})"
    );

    // And the reloaded scorer is bit-identical to the in-memory one.
    let a = scorer
        .anomaly_scores(&last.test_x)
        .expect("scoring succeeds");
    assert_eq!(a, scores);
}

#[test]
fn frozen_scorer_is_immune_to_further_training() {
    let profile = DatasetProfile::WustlIiot;
    let data = profile
        .generate(&GeneratorConfig::small(78))
        .expect("generation succeeds");
    let split = continual::prepare(&data, 4, 0.7, 78).expect("split succeeds");
    let mut model = CndIds::new(CndIdsConfig::fast(78), &split.clean_normal).expect("builds");
    model
        .train_experience(&split.experiences[0].train_x)
        .expect("first experience");
    let scorer = DeployedScorer::from_model(&model).expect("trained");
    let test = &split.experiences[0].test_x;
    let before = scorer.anomaly_scores(test).expect("scores");
    // Training the live model further must not change the frozen scorer.
    model
        .train_experience(&split.experiences[1].train_x)
        .expect("second experience");
    let after = scorer.anomaly_scores(test).expect("scores");
    assert_eq!(before, after);
    // ...while the live model did change.
    let live = model.anomaly_scores(test).expect("scores");
    assert_ne!(before, live);
}
