//! Cross-crate test: every novelty detector in the workspace runs on
//! every synthetic profile and produces sane, better-than-chance
//! rankings on the pooled test data.

use cnd_ids::core::runner::evaluate_static_detector;
use cnd_ids::datasets::{continual, DatasetProfile, GeneratorConfig};
use cnd_ids::detectors::{
    DeepIsolationForest, IsolationForest, KnnAggregation, KnnDetector, LocalOutlierFactor,
    MahalanobisDetector, NoveltyDetector, OneClassSvm, PcaDetector,
};

fn roster(seed: u64) -> Vec<Box<dyn NoveltyDetector>> {
    vec![
        Box::new(LocalOutlierFactor::new(20)),
        Box::new(OneClassSvm::new(Default::default())),
        Box::new(PcaDetector::new(0.95)),
        Box::new(DeepIsolationForest::new(Default::default())),
        Box::new(IsolationForest::new(50, 128, seed)),
        Box::new(KnnDetector::new(10, KnnAggregation::Mean)),
        Box::new(MahalanobisDetector::new(1e-6)),
    ]
}

#[test]
fn every_detector_runs_on_every_profile() {
    for profile in DatasetProfile::ALL {
        let data = profile
            .generate(&GeneratorConfig::small(51))
            .expect("generation succeeds");
        let split = continual::prepare(&data, profile.default_experiences(), 0.7, 51)
            .expect("split succeeds");
        for det in roster(51).iter_mut() {
            let out = evaluate_static_detector(det.as_mut(), &split).expect("runs");
            // Better than random ranking: PR-AUC above the attack base
            // rate (the random-classifier PR-AUC).
            let base_rate = data.attack_count() as f64 / data.len() as f64;
            let ap = out.pr_auc.expect("scores exist");
            assert!(
                ap > base_rate,
                "{} on {profile}: PR-AUC {ap:.3} is not above base rate {base_rate:.3}",
                out.name
            );
            assert!(
                out.per_experience_f1
                    .iter()
                    .all(|f| (0.0..=1.0).contains(f)),
                "{} on {profile}: invalid F1 values",
                out.name
            );
        }
    }
}

#[test]
fn detector_scores_are_deterministic_across_calls() {
    let data = DatasetProfile::UnswNb15
        .generate(&GeneratorConfig::small(52))
        .expect("generation succeeds");
    let split = continual::prepare(&data, 5, 0.7, 52).expect("split succeeds");
    for det in roster(52).iter_mut() {
        det.fit(&split.clean_normal).expect("fit succeeds");
        let x = &split.experiences[0].test_x;
        let a = det.anomaly_scores(x).expect("scores");
        let b = det.anomaly_scores(x).expect("scores");
        assert_eq!(a, b, "{} scoring is not deterministic", det.name());
    }
}
